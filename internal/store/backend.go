// Pluggable durability: the Backend interface is the seam between the
// in-memory registry and whatever medium makes it survive a restart. The
// original single-JSON-file codec lives on as internal/store/filestore
// (same bytes, same Load semantics); internal/store/logstore replaces the
// O(registry) rewrite-per-event with an O(event) append to a segmented
// log. Both speak in lifecycle events — the four mutations a registry
// can undergo — replayed through Store.Apply, which enforces the same
// invariants Load does (version continuity, promotion-log consistency,
// rules that compile).
package store

import (
	"encoding/json"
	"fmt"
)

// Op names one lifecycle mutation of the registry. These are the wire
// identities of the four Store mutators; a Backend persists them, and
// Apply replays them.
type Op string

const (
	// OpPut appends a new version and promotes it (Store.Put).
	OpPut Op = "put"
	// OpCandidate appends a new version without promoting (Store.PutCandidate).
	OpCandidate Op = "candidate"
	// OpPromote makes an existing version the serving one (Store.Promote).
	OpPromote Op = "promote"
	// OpRollback reverts to the previously promoted version (Store.Rollback).
	OpRollback Op = "rollback"
)

// Backend is a durable home for the wrapper registry. Implementations
// persist lifecycle events (AppendEntry, AppendPromotion) and reproduce
// the registry they imply (Load, LoadPartition).
//
// The contract mirrors how the serving plane mutates state: a shard
// mutates its in-memory partition first, then reports the event to the
// backend. Attach hands the backend a live reference to each shard's
// partition so snapshot-style implementations (filestore) can render the
// full registry on demand; event-log implementations ignore it and track
// state from the events alone.
//
// Appends for a given site must be serialized by the caller in the order
// the in-memory mutations happened — the serving layer guarantees this
// (admin handlers and the job plane hold a lifecycle lock across
// mutate+append). Appends for different sites may race freely.
type Backend interface {
	// Load reproduces the full registry. A fresh backend yields an empty
	// registry, never an error.
	Load() (*Store, error)
	// LoadPartition reproduces only the sites the partitioner assigns to
	// shardID, with the same eager validation as Load.
	LoadPartition(ring Partitioner, shardID int) (*Store, error)
	// Attach registers a shard's live partition. Snapshot-style backends
	// read attached partitions when persisting; log backends ignore them.
	Attach(shardID int, part *Store)
	// AppendEntry persists a new stored version (promote true = OpPut,
	// false = OpCandidate) that the caller already applied in memory.
	AppendEntry(shardID int, e Entry, promote bool) error
	// AppendPromotion persists a serving-decision event (OpPromote or
	// OpRollback) the caller already applied in memory. version is the
	// promoted version for OpPromote and ignored for OpRollback.
	AppendPromotion(shardID int, site string, op Op, version int) error
	// Snapshot forces a full-image persist (compaction point for log
	// backends, a plain save for snapshot backends).
	Snapshot() error
	// Close flushes and releases the backend. The backend must not be
	// used afterwards.
	Close() error
}

// Apply replays one lifecycle event onto the registry, enforcing the
// same invariants Load checks: version continuity (an entry's Version
// must be exactly one past the site's history), entries that compile,
// promotions of versions that exist, rollbacks with somewhere to go.
// This is the replay half of the event-sourced backends — a log of
// events Apply accepts reproduces exactly the registry that emitted
// them.
func (s *Store) Apply(op Op, site string, version int, e *Entry) error {
	switch op {
	case OpPut, OpCandidate:
		if e == nil {
			return fmt.Errorf("store: apply %s %q: no entry", op, site)
		}
		if e.Site != site {
			return fmt.Errorf("store: apply %s %q: entry carries site %q", op, site, e.Site)
		}
		w := wireWrapper{Format: FormatVersion, Lang: e.Lang, Rule: e.Rule, LR: e.LR}
		if _, err := w.compile(); err != nil {
			return fmt.Errorf("store: apply %s %q v%d: %w", op, site, e.Version, err)
		}
		s.mu.Lock()
		defer s.mu.Unlock()
		if want := len(s.sites[site]) + 1; e.Version != want {
			return fmt.Errorf("store: apply %s %q: entry v%d, want v%d", op, site, e.Version, want)
		}
		s.sites[site] = append(s.sites[site], *e)
		if op == OpPut {
			s.promotion[site] = append(s.promotion[site], e.Version)
		}
		s.bump(site)
		return nil
	case OpPromote:
		_, err := s.Promote(site, version)
		return err
	case OpRollback:
		_, err := s.Rollback(site)
		return err
	default:
		return fmt.Errorf("store: apply: unknown op %q", op)
	}
}

// Clone returns a deep copy of the registry's durable state (versions
// and promotion logs). Epochs in the copy start at zero, exactly as
// after a Load — a clone is a fresh registry, not a live view.
func (s *Store) Clone() *Store {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := New()
	for site, vs := range s.sites {
		out.sites[site] = append([]Entry(nil), vs...)
		if log := s.promotion[site]; len(log) > 0 {
			out.promotion[site] = append([]int(nil), log...)
		}
	}
	return out
}

// Encode renders the registry in the versioned wire form Save writes
// (indented JSON envelope, trailing newline) — the exact bytes of the
// on-disk format, exposed so backends can embed full-registry snapshots.
func (s *Store) Encode() ([]byte, error) {
	s.mu.RLock()
	f := storeFile{Format: FormatVersion, Sites: s.sites, Promotions: s.promotion}
	data, err := json.MarshalIndent(f, "", "  ")
	s.mu.RUnlock()
	if err != nil {
		return nil, fmt.Errorf("store: encode: %w", err)
	}
	return append(data, '\n'), nil
}

// Decode reads a registry from the wire form Encode/Save produce, with
// the same eager validation as Load. source names the origin in errors
// (a file path, a segment name).
func Decode(data []byte, source string) (*Store, error) {
	s, _, err := decodeFiltered(data, source, nil, false)
	return s, err
}

// DecodeFiltered is Decode keeping only the sites keep accepts; skipped
// sites are not validated or compiled (the partitioned-load fast path).
func DecodeFiltered(data []byte, source string, keep func(site string) bool) (*Store, error) {
	s, _, err := decodeFiltered(data, source, keep, false)
	return s, err
}
