package store

import (
	"encoding/json"
	"fmt"

	"autowrap/internal/lr"
	"autowrap/internal/wrapper"
	"autowrap/internal/xpinduct"
)

// FormatVersion is the wire-format version stamped into every marshaled
// wrapper and store file. Decoders reject versions they do not know instead
// of guessing at field semantics.
const FormatVersion = 1

// LRRule is the LR payload of the wire form: the delimiter pair verbatim,
// so stored rules survive byte-exact (the rendered LR(%q, %q) syntax is for
// humans, not for parsing back).
type LRRule struct {
	Left  string `json:"left"`
	Right string `json:"right"`
}

// wireWrapper is the stable serialization of one compiled wrapper.
type wireWrapper struct {
	Format int     `json:"format"`
	Lang   string  `json:"lang"`
	Rule   string  `json:"rule,omitempty"`
	LR     *LRRule `json:"lr,omitempty"`
}

// Compile converts a learned (corpus-bound) wrapper into its portable,
// serializable form, dispatching on the wrapper language. Wrappers that are
// already portable pass through.
func Compile(w wrapper.Wrapper) (wrapper.Portable, error) {
	switch t := w.(type) {
	case wrapper.Portable:
		return t, nil
	case *lr.Wrapper:
		return lr.Compile(t)
	case *wrapper.FeatureWrapper:
		if t.Space().Name() == "xpath" {
			return xpinduct.Compile(t)
		}
		return nil, fmt.Errorf("store: no portable form for feature space %q", t.Space().Name())
	default:
		return nil, fmt.Errorf("store: no portable form for wrapper type %T", w)
	}
}

// MarshalWrapper renders a portable wrapper in the versioned JSON wire form.
func MarshalWrapper(p wrapper.Portable) ([]byte, error) {
	w, err := wireOf(p)
	if err != nil {
		return nil, err
	}
	return json.Marshal(w)
}

func wireOf(p wrapper.Portable) (wireWrapper, error) {
	w := wireWrapper{Format: FormatVersion, Lang: p.Lang()}
	switch t := p.(type) {
	case *xpinduct.Compiled:
		w.Rule = t.Rule()
	case *lr.Compiled:
		w.Rule = t.Rule()
		w.LR = &LRRule{Left: t.Left, Right: t.Right}
	default:
		return wireWrapper{}, fmt.Errorf("store: no wire form for portable type %T", p)
	}
	return w, nil
}

// UnmarshalWrapper decodes and compiles a wrapper from its wire form — the
// fresh-process half of the learn/serve split. Rules are re-compiled on
// load, so a corrupted or hand-edited rule fails here, not at serve time.
func UnmarshalWrapper(data []byte) (wrapper.Portable, error) {
	var w wireWrapper
	if err := json.Unmarshal(data, &w); err != nil {
		return nil, fmt.Errorf("store: unmarshal wrapper: %w", err)
	}
	p, err := w.compile()
	if err != nil {
		return nil, fmt.Errorf("store: unmarshal wrapper: %w", err)
	}
	return p, nil
}

// compile produces the runnable form of the wire wrapper. Errors carry no
// "store:" prefix — every public entry point (UnmarshalWrapper,
// Entry.Compile, Load) wraps them with its own context (site, version,
// file path), which is what makes a bad stored rule debuggable.
func (w wireWrapper) compile() (wrapper.Portable, error) {
	if w.Format != FormatVersion {
		return nil, fmt.Errorf("unsupported wire format %d (want %d)", w.Format, FormatVersion)
	}
	switch w.Lang {
	case "xpath":
		return xpinduct.CompileRule(w.Rule)
	case "lr":
		if w.LR == nil {
			return nil, fmt.Errorf("lr wrapper missing delimiter payload")
		}
		return &lr.Compiled{Left: w.LR.Left, Right: w.LR.Right}, nil
	default:
		return nil, fmt.Errorf("unknown wrapper language %q", w.Lang)
	}
}
