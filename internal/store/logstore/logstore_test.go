package logstore_test

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"
	"time"

	"autowrap/internal/lr"
	"autowrap/internal/shard"
	"autowrap/internal/store"
	"autowrap/internal/store/filestore"
	"autowrap/internal/store/logstore"
)

func openLog(t *testing.T, dir string, opt logstore.Options) *logstore.Backend {
	t.Helper()
	b, err := logstore.Open(dir, opt)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func entryFor(t *testing.T, prior *store.Store, site string) store.Entry {
	t.Helper()
	version := len(prior.History(site)) + 1
	scratch := store.New()
	for v := 1; v < version; v++ {
		if _, err := scratch.Put(site, &lr.Compiled{Left: "<b>", Right: "</b>"}, store.Meta{}); err != nil {
			t.Fatal(err)
		}
	}
	e, err := scratch.Put(site, &lr.Compiled{Left: "<b>", Right: "</b>"}, store.Meta{})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func encode(t *testing.T, s *store.Store) []byte {
	t.Helper()
	b, err := s.Encode()
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// driveLifecycle pushes one full lifecycle through a backend while
// mirroring it on a reference registry, exactly as the serving plane
// does (mutate in memory, then append the event).
func driveLifecycle(t *testing.T, be store.Backend, ref *store.Store) {
	t.Helper()
	step := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 3; i++ {
		site := fmt.Sprintf("site-%d.example.com", i)
		e, err := ref.Put(site, &lr.Compiled{Left: "<b>", Right: "</b>"}, store.Meta{Score: float64(i)})
		step(err)
		step(be.AppendEntry(0, e, true))
		c, err := ref.PutCandidate(site, &lr.Compiled{Left: "<i>", Right: "</i>"}, store.Meta{})
		step(err)
		step(be.AppendEntry(0, c, false))
	}
	_, err := ref.Promote("site-1.example.com", 2)
	step(err)
	step(be.AppendPromotion(0, "site-1.example.com", store.OpPromote, 2))
	_, err = ref.Rollback("site-1.example.com")
	step(err)
	step(be.AppendPromotion(0, "site-1.example.com", store.OpRollback, 0))
}

// TestLogRoundTrip pins the core contract: a log fed a lifecycle
// reproduces the same registry, both live and after reopen.
func TestLogRoundTrip(t *testing.T) {
	dir := t.TempDir()
	b := openLog(t, dir, logstore.Options{})
	ref := store.New()
	driveLifecycle(t, b, ref)

	live, err := b.Load()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(encode(t, live), encode(t, ref)) {
		t.Fatal("live Load diverges from the registry that emitted the events")
	}
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}

	b2 := openLog(t, dir, logstore.Options{})
	defer b2.Close()
	if rec := b2.Recovered(); rec != nil {
		t.Fatalf("clean log reopened with recovery: %+v", rec)
	}
	replayed, err := b2.Load()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(encode(t, replayed), encode(t, ref)) {
		t.Fatal("replayed registry diverges from the one that emitted the events")
	}
	if got := replayed.Promotions("site-1.example.com"); len(got) != 1 || got[0] != 1 {
		t.Fatalf("promotion log after replay: %v, want [1]", got)
	}
}

// TestLogBackendMatchesFileBackend drives the identical lifecycle script
// through both backends and compares the registries they reproduce —
// the backends must be interchangeable, not merely individually sane.
func TestLogBackendMatchesFileBackend(t *testing.T) {
	dir := t.TempDir()
	lb := openLog(t, filepath.Join(dir, "log"), logstore.Options{})
	defer lb.Close()
	fb, err := filestore.Open(filepath.Join(dir, "wrappers.json"))
	if err != nil {
		t.Fatal(err)
	}
	defer fb.Close()

	logRef, fileRef := store.New(), store.New()
	fb.Attach(0, fileRef)
	driveLifecycle(t, lb, logRef)
	driveLifecycle(t, fb, fileRef)

	fromLog, err := lb.Load()
	if err != nil {
		t.Fatal(err)
	}
	fromFile, err := fb.Load()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(encode(t, fromLog), encode(t, fromFile)) {
		t.Fatalf("backends reproduce different registries:\n%s\n--- vs ---\n%s",
			encode(t, fromLog), encode(t, fromFile))
	}
}

// TestLogLoadPartition pins partitioned reproduction: each shard's slice
// holds exactly its ring-owned sites and the slices cover the registry.
func TestLogLoadPartition(t *testing.T) {
	b := openLog(t, t.TempDir(), logstore.Options{})
	defer b.Close()
	ref := store.New()
	for i := 0; i < 12; i++ {
		site := fmt.Sprintf("part-%02d.example.com", i)
		e, err := ref.Put(site, &lr.Compiled{Left: "<b>", Right: "</b>"}, store.Meta{})
		if err != nil {
			t.Fatal(err)
		}
		if err := b.AppendEntry(0, e, true); err != nil {
			t.Fatal(err)
		}
	}
	ring := shard.NewRing(3, 32)
	total := 0
	for k := 0; k < 3; k++ {
		part, err := b.LoadPartition(ring, k)
		if err != nil {
			t.Fatal(err)
		}
		for _, site := range part.Sites() {
			if ring.Owner(site) != k {
				t.Fatalf("site %s in partition %d, ring says %d", site, k, ring.Owner(site))
			}
		}
		total += part.Len()
	}
	if total != ref.Len() {
		t.Fatalf("partitions cover %d sites, registry has %d", total, ref.Len())
	}
	if _, err := b.LoadPartition(nil, 0); err == nil {
		t.Fatal("LoadPartition accepted a nil partitioner")
	}
}

// TestLogRotationCompacts pins rotation: crossing SegmentBytes opens a
// new snapshot-led segment and deletes every older one, and the
// compacted log still replays to the same registry.
func TestLogRotationCompacts(t *testing.T) {
	dir := t.TempDir()
	b := openLog(t, dir, logstore.Options{SegmentBytes: 1024})
	ref := store.New()
	site := "rotate.example.com"
	for v := 1; v <= 40; v++ {
		var e store.Entry
		var err error
		if v == 1 {
			e, err = ref.Put(site, &lr.Compiled{Left: "<b>", Right: "</b>"}, store.Meta{})
		} else {
			e, err = ref.PutCandidate(site, &lr.Compiled{Left: "<b>", Right: "</b>"}, store.Meta{})
		}
		if err != nil {
			t.Fatal(err)
		}
		if err := b.AppendEntry(0, e, v == 1); err != nil {
			t.Fatal(err)
		}
	}
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	segs, err := filepath.Glob(filepath.Join(dir, "seg-*.log"))
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) != 1 {
		t.Fatalf("compaction left %d segments: %v", len(segs), segs)
	}
	if filepath.Base(segs[0]) == "seg-000001.log" {
		t.Fatal("40 appends at 1KiB segments never rotated")
	}
	b2 := openLog(t, dir, logstore.Options{})
	defer b2.Close()
	replayed, err := b2.Load()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(encode(t, replayed), encode(t, ref)) {
		t.Fatal("compacted log replays to a different registry")
	}
}

// TestLogSnapshotAndSeed pins the migration path: SeedFrom imports a
// JSON-era registry into a virgin log (and refuses a non-empty one), and
// Snapshot compacts on demand.
func TestLogSnapshotAndSeed(t *testing.T) {
	src := store.New()
	if _, err := src.Put("seeded.example.com", &lr.Compiled{Left: "<b>", Right: "</b>"}, store.Meta{}); err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	b := openLog(t, dir, logstore.Options{})
	if !b.Empty() {
		t.Fatal("virgin log not Empty")
	}
	if err := b.SeedFrom(src); err != nil {
		t.Fatal(err)
	}
	if b.Empty() {
		t.Fatal("seeded log still Empty")
	}
	if err := b.SeedFrom(src); err == nil {
		t.Fatal("SeedFrom accepted a non-empty log")
	}
	if err := b.Snapshot(); err != nil {
		t.Fatal(err)
	}
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	b2 := openLog(t, dir, logstore.Options{})
	defer b2.Close()
	got, err := b2.Load()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(encode(t, got), encode(t, src)) {
		t.Fatal("seed+snapshot+reopen lost the imported registry")
	}
}

// TestLogAppendDivergence pins the self-check: an event that does not
// follow from the log's own replayed state is refused, because logging
// it would poison every future replay.
func TestLogAppendDivergence(t *testing.T) {
	b := openLog(t, t.TempDir(), logstore.Options{})
	defer b.Close()
	e := entryFor(t, store.New(), "x.example.com")
	e.Version = 7 // the log has never seen v1..v6
	if err := b.AppendEntry(0, e, true); err == nil {
		t.Fatal("append of a version gap accepted")
	}
	if err := b.AppendPromotion(0, "x.example.com", store.OpPromote, 3); err == nil {
		t.Fatal("promotion of an unknown site accepted")
	}
	if err := b.AppendPromotion(0, "x.example.com", store.Op("put"), 1); err == nil {
		t.Fatal("AppendPromotion accepted a non-promotion op")
	}
}

// --- crash-recovery matrix ---

// seedLog writes a small lifecycle and returns the dir, the final
// segment path and the reference registry.
func seedLog(t *testing.T, opt logstore.Options) (string, string, *store.Store) {
	t.Helper()
	dir := t.TempDir()
	b := openLog(t, dir, opt)
	ref := store.New()
	driveLifecycle(t, b, ref)
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	segs, err := filepath.Glob(filepath.Join(dir, "seg-*.log"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no segments: %v", err)
	}
	return dir, segs[len(segs)-1], ref
}

func TestLogRecoveryTruncatedTail(t *testing.T) {
	for _, cut := range []int{1, 3, 9} {
		t.Run(fmt.Sprintf("cut-%d", cut), func(t *testing.T) {
			dir, seg, ref := seedLog(t, logstore.Options{})
			data, err := os.ReadFile(seg)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.Truncate(seg, int64(len(data)-cut)); err != nil {
				t.Fatal(err)
			}
			b := openLog(t, dir, logstore.Options{})
			defer b.Close()
			rec := b.Recovered()
			if rec == nil {
				t.Fatal("torn tail went unreported")
			}
			if rec.Dropped <= 0 || rec.Segment != filepath.Base(seg) {
				t.Fatalf("recovery misreported: %+v", rec)
			}
			got, err := b.Load()
			if err != nil {
				t.Fatal(err)
			}
			// The tear ate the final record (the rollback); everything
			// before it must survive intact.
			if got.Len() != ref.Len() {
				t.Fatalf("recovered %d sites, want %d", got.Len(), ref.Len())
			}
		})
	}
}

func TestLogRecoveryBitFlippedCRCFinalSegment(t *testing.T) {
	dir, seg, _ := seedLog(t, logstore.Options{})
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	// Flip one payload byte of the final frame: its CRC no longer holds,
	// and recovery must truncate exactly that frame, keeping the rest.
	data[len(data)-1] ^= 0x40
	if err := os.WriteFile(seg, data, 0o644); err != nil {
		t.Fatal(err)
	}
	b := openLog(t, dir, logstore.Options{})
	defer b.Close()
	rec := b.Recovered()
	if rec == nil {
		t.Fatal("bit-flipped final frame went unreported")
	}
	if want := "crc mismatch"; rec.Reason == "" || !bytes.Contains([]byte(rec.Reason), []byte(want)) {
		t.Fatalf("recovery reason %q does not name the %s", rec.Reason, want)
	}
	fi, err := os.Stat(seg)
	if err != nil {
		t.Fatal(err)
	}
	if fi.Size() != rec.Offset || fi.Size() >= int64(len(data)) {
		t.Fatalf("segment not truncated to the last good frame: size %d, recovery %+v", fi.Size(), rec)
	}
}

func TestLogRecoveryBitFlippedCRCEarlierSegment(t *testing.T) {
	// Two segments: corrupt the FIRST, which no crash can explain —
	// recovery must refuse with a typed error, not truncate silently.
	dir := t.TempDir()
	b := openLog(t, dir, logstore.Options{})
	ref := store.New()
	driveLifecycle(t, b, ref)
	// Rotate by hand so two segments exist, then append one more event.
	if err := b.Snapshot(); err != nil {
		t.Fatal(err)
	}
	e, err := ref.PutCandidate("site-0.example.com", &lr.Compiled{Left: "<u>", Right: "</u>"}, store.Meta{})
	if err != nil {
		t.Fatal(err)
	}
	if err := b.AppendEntry(0, e, false); err != nil {
		t.Fatal(err)
	}
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	segs, _ := filepath.Glob(filepath.Join(dir, "seg-*.log"))
	if len(segs) < 2 {
		// Snapshot compacts older segments away; recreate the two-segment
		// shape by copying the survivor forward.
		data, err := os.ReadFile(segs[0])
		if err != nil {
			t.Fatal(err)
		}
		next := filepath.Join(dir, "seg-999999.log")
		if err := os.WriteFile(next, data, 0o644); err != nil {
			t.Fatal(err)
		}
		segs = append(segs, next)
	}
	first := segs[0]
	data, err := os.ReadFile(first)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0x40
	if err := os.WriteFile(first, data, 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = logstore.Open(dir, logstore.Options{})
	var ce *logstore.CorruptError
	if !errors.As(err, &ce) {
		t.Fatalf("corrupt non-final segment: got %v, want *CorruptError", err)
	}
	if ce.Segment != filepath.Base(first) {
		t.Fatalf("CorruptError names %s, want %s", ce.Segment, filepath.Base(first))
	}
}

func TestLogRecoveryDuplicatedSegment(t *testing.T) {
	// A crash between compaction's copy and remove leaves the same
	// records in two segments; replay must skip the already-seen half.
	dir, seg, ref := seedLog(t, logstore.Options{})
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	dup := filepath.Join(dir, "seg-000002.log")
	if err := os.WriteFile(dup, data, 0o644); err != nil {
		t.Fatal(err)
	}
	b := openLog(t, dir, logstore.Options{})
	defer b.Close()
	if rec := b.Recovered(); rec != nil {
		t.Fatalf("duplicated segment reported as damage: %+v", rec)
	}
	got, err := b.Load()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(encode(t, got), encode(t, ref)) {
		t.Fatal("duplicated segment replayed into a different registry (records applied twice?)")
	}
}

func TestLogRecoveryEmptyFinalSegment(t *testing.T) {
	// A crash right after rotation's create can leave an empty final
	// segment; boot must continue from the earlier segments' state.
	dir, _, ref := seedLog(t, logstore.Options{})
	if err := os.WriteFile(filepath.Join(dir, "seg-000007.log"), nil, 0o644); err != nil {
		t.Fatal(err)
	}
	b := openLog(t, dir, logstore.Options{})
	defer b.Close()
	got, err := b.Load()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(encode(t, got), encode(t, ref)) {
		t.Fatal("empty final segment changed the replayed registry")
	}
}

func TestLogRecoveryEmptyLog(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "seg-000001.log"), nil, 0o644); err != nil {
		t.Fatal(err)
	}
	b := openLog(t, dir, logstore.Options{})
	defer b.Close()
	if !b.Empty() {
		t.Fatal("empty segment file did not open as an empty log")
	}
	st, err := b.Load()
	if err != nil || st.Len() != 0 {
		t.Fatalf("empty log loads %d sites, err %v", st.Len(), err)
	}
}

// TestLogRecoveryValidFrameInvalidRecord pins the other asymmetry: a
// CRC-valid record the registry cannot accept is corruption (or a bug),
// never silently truncated — even in the final segment it fails Open.
func TestLogRecoveryValidFrameInvalidRecord(t *testing.T) {
	dir, seg, _ := seedLog(t, logstore.Options{})
	// Append a well-framed record whose seq continues the chain but whose
	// event cannot apply (promote of a version that does not exist).
	payload := []byte(`{"seq":999,"op":"promote","site":"site-0.example.com","version":42}`)
	frame := make([]byte, 8+len(payload))
	binary.LittleEndian.PutUint32(frame[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:8], crc32.Checksum(payload, crc32.MakeTable(crc32.Castagnoli)))
	copy(frame[8:], payload)
	f, err := os.OpenFile(seg, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(frame); err != nil {
		t.Fatal(err)
	}
	f.Close()
	_, err = logstore.Open(dir, logstore.Options{})
	var ce *logstore.CorruptError
	if !errors.As(err, &ce) {
		t.Fatalf("invalid-but-framed record: got %v, want *CorruptError", err)
	}
	if ce.Seq != 999 {
		t.Fatalf("CorruptError seq %d, want 999", ce.Seq)
	}
}

// TestLogGroupCommit pins the group-commit contract: with a sync
// interval set, appends still replay identically after a clean Close
// (which force-syncs the loss window), rotation stays durable inline,
// and the background flusher syncs an idle-then-dirty log on its own.
func TestLogGroupCommit(t *testing.T) {
	dir := t.TempDir()
	opt := logstore.Options{SyncInterval: 5 * time.Millisecond}
	b := openLog(t, dir, opt)
	ref := store.New()
	driveLifecycle(t, b, ref)

	// Give the flusher at least one tick with data pending, then keep
	// appending — the deferred syncs must never corrupt the frames.
	time.Sleep(20 * time.Millisecond)
	e, err := ref.Put("late.example.com", &lr.Compiled{Left: "<b>", Right: "</b>"}, store.Meta{})
	if err != nil {
		t.Fatal(err)
	}
	if err := b.AppendEntry(0, e, true); err != nil {
		t.Fatal(err)
	}
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}

	b2 := openLog(t, dir, logstore.Options{})
	defer b2.Close()
	if rec := b2.Recovered(); rec != nil {
		t.Fatalf("group-commit log reopened with recovery: %+v", rec)
	}
	replayed, err := b2.Load()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(encode(t, replayed), encode(t, ref)) {
		t.Fatal("group-commit replay diverges from the registry that emitted the events")
	}
}

// TestLogGroupCommitRotation forces rotation under group commit: the
// snapshot segment and compaction must behave exactly as in per-append
// sync mode.
func TestLogGroupCommitRotation(t *testing.T) {
	dir := t.TempDir()
	b := openLog(t, dir, logstore.Options{SegmentBytes: 1, SyncInterval: time.Hour})
	ref := store.New()
	driveLifecycle(t, b, ref) // every append rotates (threshold 1 byte)
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	names, err := filepath.Glob(filepath.Join(dir, "seg-*.log"))
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 1 {
		t.Fatalf("rotation under group commit left %d segments, want 1 (compaction)", len(names))
	}
	b2 := openLog(t, dir, logstore.Options{})
	defer b2.Close()
	replayed, err := b2.Load()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(encode(t, replayed), encode(t, ref)) {
		t.Fatal("rotated group-commit replay diverges")
	}
}
