// Package logstore is the O(event) durability backend behind the
// store.Backend seam: an embedded, stdlib-only, append-only segmented
// log. Where filestore rewrites the whole registry on every lifecycle
// event, logstore appends exactly one framed record per mutation — put,
// candidate, promote, rollback — so persisting an event costs the event,
// not the registry.
//
// On disk a log is a directory of segments (seg-000001.log, ...), each a
// sequence of frames:
//
//	| length  uint32 LE | crc     uint32 LE | payload (JSON record)     |
//	|  4 bytes          |  4 bytes          |  length bytes             |
//
// The CRC is CRC-32C (Castagnoli) over the payload; a frame whose length
// or checksum does not hold is not trusted. Records carry a monotonic
// sequence number, which makes replay idempotent: a duplicated segment
// (a crash between copy and remove during compaction) replays as
// already-seen records and is skipped.
//
// Appends are fsync'd by default; Options.SyncInterval opts into group
// commit instead (appends batch in the page cache, a background flusher
// syncs at most once per interval — a bounded, explicitly chosen loss
// window). When the active segment outgrows
// Options.SegmentBytes the log rotates: a new segment opens with a full
// registry snapshot record (the exact storeFile wire form filestore
// writes, embedded as one payload) and every older segment is deleted —
// rotation is compaction, and recovery cost stays bounded by one
// segment's worth of events.
//
// Crash recovery is deliberately asymmetric. A torn tail — a partial or
// corrupt frame in the final segment, the only place an interrupted
// append can leave one — is truncated and boot proceeds from the last
// consistent record (Recovered reports what was dropped). The same
// damage in an earlier segment, or a CRC-valid record that fails
// validation, cannot be a crash artifact and fails Open with a
// *CorruptError naming the segment, offset and sequence number.
package logstore

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"autowrap/internal/store"
)

// frame layout: 4-byte little-endian payload length, 4-byte
// little-endian CRC-32C of the payload, then the payload.
const frameHeader = 8

// maxPayload bounds a single record; anything larger is corruption, not
// a registry (a full snapshot of a huge registry still sits far below).
const maxPayload = 64 << 20

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// opSnapshot marks a full-registry snapshot record; the other ops are
// the store.Op lifecycle events.
const opSnapshot = "snapshot"

// record is one logged event in its JSON payload form.
type record struct {
	Seq     uint64          `json:"seq"`
	Op      string          `json:"op"`
	Site    string          `json:"site,omitempty"`
	Version int             `json:"version,omitempty"`
	Entry   *store.Entry    `json:"entry,omitempty"`
	Snap    json.RawMessage `json:"snap,omitempty"`
}

// Options tune a log backend; the zero value selects defaults.
type Options struct {
	// SegmentBytes is the rotation threshold: once the active segment
	// reaches it, the next append rotates (snapshot + compaction).
	// Default 1 MiB.
	SegmentBytes int64
	// NoSync skips the fsync after each append. Only for tests and
	// benchmarks that measure framing cost, never for serving.
	NoSync bool
	// SyncInterval enables group commit: appends land in the OS page
	// cache without an inline fsync, and a background flusher syncs the
	// active segment at most once per interval (and only when new data
	// arrived). Rotation and Close still sync inline, so segment
	// boundaries and shutdown are always durable. The trade is explicit:
	// a crash can lose up to the last interval's worth of acknowledged
	// appends — but never the log's consistency, because CRC framing and
	// torn-tail recovery treat the unsynced tail exactly like any other
	// interrupted write. Zero keeps the per-append fsync; ignored when
	// NoSync is set.
	SyncInterval time.Duration
}

func (o Options) withDefaults() Options {
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 1 << 20
	}
	return o
}

// Recovery describes a torn tail Open truncated away.
type Recovery struct {
	Segment string // segment file name
	Offset  int64  // size the segment was truncated to
	Dropped int64  // bytes discarded
	Reason  string // why the first dropped frame was rejected
}

// CorruptError reports log damage recovery must not paper over: a bad
// frame anywhere but the final segment's tail, or a CRC-valid record
// that fails validation (wrong sequence, non-compiling entry, an event
// the registry state cannot accept).
type CorruptError struct {
	Segment string // segment file name
	Offset  int64  // byte offset of the offending frame
	Seq     uint64 // record sequence, 0 when the frame never decoded
	Reason  string
	Err     error // underlying cause, when any
}

func (e *CorruptError) Error() string {
	return fmt.Sprintf("logstore: %s@%d (seq %d): %s", e.Segment, e.Offset, e.Seq, e.Reason)
}

func (e *CorruptError) Unwrap() error { return e.Err }

// Backend is an append-only segmented-log registry store. Open it with
// Open; it satisfies store.Backend.
type Backend struct {
	dir string
	opt Options

	mu        sync.Mutex
	shadow    *store.Store // registry state implied by the log
	seq       uint64       // last sequence number written
	f         *os.File     // active segment, opened for append
	segIndex  int
	size      int64
	recovered *Recovery

	// Group commit (Options.SyncInterval > 0): dirty marks unsynced
	// appends, the flusher goroutine syncs them, and a failed background
	// sync sticks in syncErr so the next append reports it instead of
	// silently acknowledging writes that may never become durable.
	dirty     bool
	syncErr   error
	flushStop chan struct{}
	flushDone chan struct{}
	flushOnce sync.Once
}

var _ store.Backend = (*Backend)(nil)

func segName(index int) string { return fmt.Sprintf("seg-%06d.log", index) }

// Open opens (creating if needed) the log at dir and replays it. Every
// replayed entry is validated exactly as store.Load validates a file —
// version continuity, promotion-log consistency, rules that compile. A
// torn tail in the final segment is truncated (see Recovered); any other
// damage fails with a *CorruptError.
func Open(dir string, opt Options) (*Backend, error) {
	if dir == "" {
		return nil, fmt.Errorf("logstore: empty dir")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("logstore: %w", err)
	}
	b := &Backend{dir: dir, opt: opt.withDefaults(), shadow: store.New()}

	names, err := filepath.Glob(filepath.Join(dir, "seg-*.log"))
	if err != nil {
		return nil, fmt.Errorf("logstore: %w", err)
	}
	type seg struct {
		path  string
		index int
	}
	var segs []seg
	for _, p := range names {
		var idx int
		if _, err := fmt.Sscanf(filepath.Base(p), "seg-%d.log", &idx); err != nil {
			continue // not ours
		}
		segs = append(segs, seg{path: p, index: idx})
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].index < segs[j].index })

	if len(segs) == 0 {
		b.segIndex = 1
		f, err := os.OpenFile(filepath.Join(dir, segName(1)),
			os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, fmt.Errorf("logstore: %w", err)
		}
		b.f = f
		b.startFlusher()
		return b, b.syncDir()
	}

	for i, sg := range segs {
		final := i == len(segs)-1
		size, err := b.replaySegment(sg.path, final)
		if err != nil {
			return nil, err
		}
		if final {
			b.segIndex = sg.index
			b.size = size
		}
	}
	f, err := os.OpenFile(segs[len(segs)-1].path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("logstore: %w", err)
	}
	b.f = f
	b.startFlusher()
	return b, nil
}

// startFlusher launches the group-commit flusher when the options ask
// for one (SyncInterval > 0 and syncing at all).
func (b *Backend) startFlusher() {
	if b.opt.SyncInterval <= 0 || b.opt.NoSync {
		return
	}
	b.flushStop = make(chan struct{})
	b.flushDone = make(chan struct{})
	go b.flushLoop(b.opt.SyncInterval)
}

// flushLoop is the group-commit heartbeat: at most one fsync per
// interval, and none at all while the log is idle.
func (b *Backend) flushLoop(interval time.Duration) {
	defer close(b.flushDone)
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-b.flushStop:
			return
		case <-t.C:
			b.mu.Lock()
			b.flushLocked()
			b.mu.Unlock()
		}
	}
}

// flushLocked syncs the active segment when appends are pending. A
// failed sync sticks: the data's durability is unknown, so every later
// append refuses until the operator intervenes.
func (b *Backend) flushLocked() {
	if !b.dirty || b.f == nil {
		return
	}
	if err := b.f.Sync(); err != nil {
		if b.syncErr == nil {
			b.syncErr = fmt.Errorf("logstore: group sync: %w", err)
		}
		return
	}
	b.dirty = false
}

// stopFlusher shuts the group-commit goroutine down exactly once.
func (b *Backend) stopFlusher() {
	if b.flushStop == nil {
		return
	}
	b.flushOnce.Do(func() {
		close(b.flushStop)
		<-b.flushDone
	})
}

// replaySegment applies one segment's records to the shadow registry and
// returns the segment's trusted size (post-truncation for a torn final
// tail).
func (b *Backend) replaySegment(path string, final bool) (int64, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, fmt.Errorf("logstore: %w", err)
	}
	name := filepath.Base(path)
	off := int64(0)
	for int(off) < len(data) {
		payload, n, ferr := parseFrame(data[off:])
		if ferr != nil {
			if final {
				return b.truncateTail(path, off, int64(len(data)), ferr.Error())
			}
			return 0, &CorruptError{Segment: name, Offset: off, Reason: ferr.Error(), Err: ferr}
		}
		var rec record
		if err := json.Unmarshal(payload, &rec); err != nil {
			if final {
				return b.truncateTail(path, off, int64(len(data)), "payload not a record: "+err.Error())
			}
			return 0, &CorruptError{Segment: name, Offset: off,
				Reason: "payload not a record", Err: err}
		}
		if rec.Seq <= b.seq {
			// Already applied — a duplicated segment left by a crash
			// mid-compaction. Skip, don't re-apply.
			off += int64(n)
			continue
		}
		if err := b.applyRecord(rec); err != nil {
			return 0, &CorruptError{Segment: name, Offset: off, Seq: rec.Seq,
				Reason: "invalid record", Err: err}
		}
		b.seq = rec.Seq
		off += int64(n)
	}
	return int64(len(data)), nil
}

// truncateTail drops the final segment's unreadable tail starting at off
// and records what happened.
func (b *Backend) truncateTail(path string, off, size int64, reason string) (int64, error) {
	if err := os.Truncate(path, off); err != nil {
		return 0, fmt.Errorf("logstore: truncate torn tail of %s: %w", path, err)
	}
	b.recovered = &Recovery{
		Segment: filepath.Base(path),
		Offset:  off,
		Dropped: size - off,
		Reason:  reason,
	}
	return off, nil
}

func (b *Backend) applyRecord(rec record) error {
	if rec.Op == opSnapshot {
		s, err := store.Decode(rec.Snap, "snapshot")
		if err != nil {
			return err
		}
		b.shadow = s
		return nil
	}
	return b.shadow.Apply(store.Op(rec.Op), rec.Site, rec.Version, rec.Entry)
}

// parseFrame decodes one frame from the head of buf, returning the
// payload and the total frame size consumed.
func parseFrame(buf []byte) (payload []byte, n int, err error) {
	if len(buf) < frameHeader {
		return nil, 0, fmt.Errorf("short frame header (%d bytes)", len(buf))
	}
	length := binary.LittleEndian.Uint32(buf[0:4])
	sum := binary.LittleEndian.Uint32(buf[4:8])
	if length == 0 || length > maxPayload {
		return nil, 0, fmt.Errorf("implausible payload length %d", length)
	}
	if uint64(len(buf)-frameHeader) < uint64(length) {
		return nil, 0, fmt.Errorf("truncated payload (want %d, have %d)", length, len(buf)-frameHeader)
	}
	payload = buf[frameHeader : frameHeader+int(length)]
	if got := crc32.Checksum(payload, castagnoli); got != sum {
		return nil, 0, fmt.Errorf("crc mismatch (stored %08x, computed %08x)", sum, got)
	}
	return payload, frameHeader + int(length), nil
}

// encodeFrame renders payload as one wire frame.
func encodeFrame(payload []byte) []byte {
	out := make([]byte, frameHeader+len(payload))
	binary.LittleEndian.PutUint32(out[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(out[4:8], crc32.Checksum(payload, castagnoli))
	copy(out[frameHeader:], payload)
	return out
}

// Recovered reports the torn tail Open truncated, or nil when the log
// replayed clean.
func (b *Backend) Recovered() *Recovery {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.recovered
}

// Empty reports whether the log holds no records yet (the seed-migration
// check wrapserved uses before importing a JSON registry).
func (b *Backend) Empty() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.seq == 0
}

// Load reproduces the full registry the log implies.
func (b *Backend) Load() (*store.Store, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.shadow.Clone(), nil
}

// LoadPartition reproduces one shard's slice of the registry.
func (b *Backend) LoadPartition(ring store.Partitioner, shardID int) (*store.Store, error) {
	if ring == nil {
		return nil, fmt.Errorf("logstore: load partition: nil partitioner")
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.shadow.Partition(ring, shardID), nil
}

// Attach is a no-op: a log backend tracks registry state from the events
// themselves, never by reading live partitions.
func (b *Backend) Attach(shardID int, part *store.Store) {}

// AppendEntry logs a new stored version (promote selects put vs
// candidate) as one fsync'd record.
func (b *Backend) AppendEntry(shardID int, e store.Entry, promote bool) error {
	op := store.OpCandidate
	if promote {
		op = store.OpPut
	}
	return b.append(record{Op: string(op), Site: e.Site, Version: e.Version, Entry: &e})
}

// AppendPromotion logs a serving-decision event as one fsync'd record.
func (b *Backend) AppendPromotion(shardID int, site string, op store.Op, version int) error {
	if op != store.OpPromote && op != store.OpRollback {
		return fmt.Errorf("logstore: append promotion: bad op %q", op)
	}
	return b.append(record{Op: string(op), Site: site, Version: version})
}

func (b *Backend) append(rec record) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.f == nil {
		return fmt.Errorf("logstore: backend closed")
	}
	if b.syncErr != nil {
		return b.syncErr
	}
	// Rotate before applying: the rotation snapshot must capture the
	// state BEFORE this event, because the event's own record lands after
	// the snapshot and replays on top of it.
	if b.size >= b.opt.SegmentBytes {
		if err := b.rotateLocked(); err != nil {
			return err
		}
	}
	// Apply to the shadow before writing: if the event does not follow
	// from the log's own state, the caller's registry and this log have
	// diverged, and recording the event would poison replay.
	var entry *store.Entry
	if rec.Entry != nil {
		e := *rec.Entry
		entry = &e
	}
	if err := b.shadow.Apply(store.Op(rec.Op), rec.Site, rec.Version, entry); err != nil {
		return fmt.Errorf("logstore: append diverges from log state: %w", err)
	}
	b.seq++
	rec.Seq = b.seq
	return b.writeLocked(rec)
}

func (b *Backend) writeLocked(rec record) error {
	payload, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("logstore: %w", err)
	}
	frame := encodeFrame(payload)
	if _, err := b.f.Write(frame); err != nil {
		return fmt.Errorf("logstore: append: %w", err)
	}
	if !b.opt.NoSync {
		if b.opt.SyncInterval > 0 {
			// Group commit: the flusher syncs within one interval.
			b.dirty = true
		} else if err := b.f.Sync(); err != nil {
			return fmt.Errorf("logstore: sync: %w", err)
		}
	}
	b.size += int64(len(frame))
	return nil
}

// rotateLocked opens the next segment with a full-registry snapshot
// record, then deletes every older segment — rotation is compaction.
// A crash between the snapshot landing and the old segments going away
// leaves duplicates, which replay skips by sequence number.
func (b *Backend) rotateLocked() error {
	snap, err := b.shadow.Encode()
	if err != nil {
		return fmt.Errorf("logstore: rotate: %w", err)
	}
	next := b.segIndex + 1
	f, err := os.OpenFile(filepath.Join(b.dir, segName(next)),
		os.O_CREATE|os.O_WRONLY|os.O_APPEND|os.O_EXCL, 0o644)
	if err != nil {
		return fmt.Errorf("logstore: rotate: %w", err)
	}
	old, oldIndex := b.f, b.segIndex
	b.f, b.segIndex, b.size = f, next, 0
	b.seq++
	if err := b.writeLocked(record{Seq: b.seq, Op: opSnapshot, Snap: snap}); err != nil {
		// Fall back to the old segment; the half-born one is deleted so
		// it can never shadow future appends.
		b.f.Close()
		os.Remove(filepath.Join(b.dir, segName(next)))
		b.f, b.segIndex = old, oldIndex
		b.seq--
		return err
	}
	// Rotation is durable inline even under group commit: the snapshot
	// on the new segment and the old segment's unsynced tail both hit
	// disk before any older segment is deleted.
	if !b.opt.NoSync && b.opt.SyncInterval > 0 {
		if err := b.f.Sync(); err != nil {
			return fmt.Errorf("logstore: rotate sync: %w", err)
		}
		if err := old.Sync(); err != nil {
			return fmt.Errorf("logstore: rotate sync: %w", err)
		}
		b.dirty = false
	}
	if err := b.syncDir(); err != nil {
		return err
	}
	old.Close()
	for i := 1; i <= oldIndex; i++ {
		os.Remove(filepath.Join(b.dir, segName(i)))
	}
	return b.syncDir()
}

// writeSnapshotLocked is the shared body of Snapshot and SeedFrom.
func (b *Backend) writeSnapshotLocked() error {
	if b.f == nil {
		return fmt.Errorf("logstore: backend closed")
	}
	if b.size == 0 && b.segIndex == 1 && b.seq == 0 {
		// Empty virgin log: write the snapshot straight into segment 1.
		snap, err := b.shadow.Encode()
		if err != nil {
			return fmt.Errorf("logstore: snapshot: %w", err)
		}
		b.seq++
		return b.writeLocked(record{Seq: b.seq, Op: opSnapshot, Snap: snap})
	}
	return b.rotateLocked()
}

// Snapshot writes a full-registry snapshot and compacts older segments.
func (b *Backend) Snapshot() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.writeSnapshotLocked()
}

// SeedFrom initializes an empty log with a snapshot of src — the
// one-time migration path from a JSON registry to a log-backed one. It
// refuses to seed a log that already holds records.
func (b *Backend) SeedFrom(src *store.Store) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.seq != 0 {
		return fmt.Errorf("logstore: seed into non-empty log (seq %d)", b.seq)
	}
	b.shadow = src.Clone()
	return b.writeSnapshotLocked()
}

// Close syncs and closes the active segment. Under group commit the
// flusher stops first, then the final sync makes every acknowledged
// append durable — a clean shutdown never loses the loss window.
func (b *Backend) Close() error {
	b.stopFlusher()
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.f == nil {
		return nil
	}
	var err error
	if !b.opt.NoSync {
		err = b.f.Sync()
	}
	if cerr := b.f.Close(); err == nil {
		err = cerr
	}
	b.f = nil
	return err
}

// syncDir fsyncs the log directory so segment creation/removal is
// durable, not just the data inside the files.
func (b *Backend) syncDir() error {
	d, err := os.Open(b.dir)
	if err != nil {
		return fmt.Errorf("logstore: %w", err)
	}
	defer d.Close()
	if b.opt.NoSync {
		return nil
	}
	if err := d.Sync(); err != nil && !errors.Is(err, os.ErrInvalid) {
		return fmt.Errorf("logstore: sync dir: %w", err)
	}
	return nil
}
