package logstore_test

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"autowrap/internal/chaos"
	"autowrap/internal/lr"
	"autowrap/internal/store"
	"autowrap/internal/store/logstore"
)

// FuzzLogRecord throws arbitrary bytes at the segment reader: whatever
// is on disk, Open must never panic, must answer either a working
// backend (torn tails truncated) or a typed *CorruptError, and a backend
// it does return must load and accept appends.
func FuzzLogRecord(f *testing.F) {
	// Seeds: a genuinely valid segment, its truncations and mutations,
	// and the chaos corpus of historically decoder-breaking shapes.
	dir := f.TempDir()
	b, err := logstore.Open(dir, logstore.Options{NoSync: true})
	if err != nil {
		f.Fatal(err)
	}
	st := store.New()
	e, err := st.Put("fuzz.example.com", &lr.Compiled{Left: "<b>", Right: "</b>"}, store.Meta{})
	if err != nil {
		f.Fatal(err)
	}
	if err := b.AppendEntry(0, e, true); err != nil {
		f.Fatal(err)
	}
	if err := b.AppendPromotion(0, "fuzz.example.com", store.OpPromote, 1); err != nil {
		f.Fatal(err)
	}
	b.Close()
	valid, err := os.ReadFile(filepath.Join(dir, "seg-000001.log"))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add([]byte{})
	mutated := append([]byte(nil), valid...)
	mutated[9] ^= 0x01 // first payload byte: CRC breaks
	f.Add(mutated)
	for _, seed := range chaos.Seeds() {
		f.Add(seed)
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, "seg-000001.log"), data, 0o644); err != nil {
			t.Fatal(err)
		}
		b, err := logstore.Open(dir, logstore.Options{NoSync: true})
		if err != nil {
			var ce *logstore.CorruptError
			if !errors.As(err, &ce) {
				t.Fatalf("Open failed without a typed error: %v", err)
			}
			return
		}
		defer b.Close()
		st, err := b.Load()
		if err != nil {
			t.Fatalf("opened backend cannot Load: %v", err)
		}
		// The recovered backend must still be appendable: the log's own
		// state decides the next valid version.
		next := len(st.History("fuzz.example.com")) + 1
		scratch := store.New()
		var e store.Entry
		for v := 1; v <= next; v++ {
			var perr error
			e, perr = scratch.Put("fuzz.example.com", &lr.Compiled{Left: "<b>", Right: "</b>"}, store.Meta{})
			if perr != nil {
				t.Fatal(perr)
			}
		}
		if err := b.AppendEntry(0, e, false); err != nil {
			t.Fatalf("recovered backend refused a valid append: %v", err)
		}
	})
}
