package store_test

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"autowrap/internal/store"
)

// lifecycleScript drives a registry through every lifecycle op: two
// promoted versions and a candidate on one site, a promote, a rollback,
// and a second site — the state every Apply/Encode test compares against.
func lifecycleScript(t *testing.T, s *store.Store) {
	t.Helper()
	if _, err := s.Put("a.example.com", testPortable(), store.Meta{Score: 0.9}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.PutCandidate("a.example.com", testPortable(), store.Meta{}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Promote("a.example.com", 2); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Rollback("a.example.com"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Put("b.example.com", testPortable(), store.Meta{}); err != nil {
		t.Fatal(err)
	}
}

// sameRegistry compares the durable state of two stores via their wire
// encodings — the canonical equality every backend must preserve.
func sameRegistry(t *testing.T, a, b *store.Store) {
	t.Helper()
	ea, err := a.Encode()
	if err != nil {
		t.Fatal(err)
	}
	eb, err := b.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ea, eb) {
		t.Fatalf("registries diverge:\n%s\n--- vs ---\n%s", ea, eb)
	}
}

// TestApplyReplaysLifecycle pins the event-sourcing contract: replaying
// the events a mutation sequence emits through Apply reproduces exactly
// the registry that emitted them.
func TestApplyReplaysLifecycle(t *testing.T) {
	src := store.New()
	lifecycleScript(t, src)

	replay := store.New()
	apply := func(op store.Op, site string, version int, e *store.Entry) {
		t.Helper()
		if err := replay.Apply(op, site, version, e); err != nil {
			t.Fatalf("apply %s %s v%d: %v", op, site, version, err)
		}
	}
	for _, site := range src.Sites() {
		for _, e := range src.History(site) {
			e := e
			// Reconstruct each append as the op the serving plane reports:
			// whether the version entered promoted is in the promotion log's
			// first occurrence order; the script's shape makes it explicit.
			promoted := site == "b.example.com" || e.Version == 1
			op := store.OpCandidate
			if promoted {
				op = store.OpPut
			}
			apply(op, site, e.Version, &e)
		}
	}
	apply(store.OpPromote, "a.example.com", 2, nil)
	apply(store.OpRollback, "a.example.com", 0, nil)
	sameRegistry(t, src, replay)
}

// TestApplyRejectsInvalidEvents pins that Apply enforces Load-grade
// invariants instead of trusting its input.
func TestApplyRejectsInvalidEvents(t *testing.T) {
	entryFor := func(site string, version int) *store.Entry {
		s := store.New()
		if _, err := s.Put(site, testPortable(), store.Meta{}); err != nil {
			t.Fatal(err)
		}
		e, _ := s.Latest(site)
		e.Version = version
		return &e
	}
	cases := []struct {
		name string
		run  func(s *store.Store) error
		want string
	}{
		{"put without entry", func(s *store.Store) error {
			return s.Apply(store.OpPut, "x", 1, nil)
		}, "no entry"},
		{"entry site mismatch", func(s *store.Store) error {
			return s.Apply(store.OpPut, "x", 1, entryFor("y", 1))
		}, "carries site"},
		{"version gap", func(s *store.Store) error {
			return s.Apply(store.OpCandidate, "x", 3, entryFor("x", 3))
		}, "want v1"},
		{"non-compiling entry", func(s *store.Store) error {
			e := entryFor("x", 1)
			e.Lang = "no-such-lang"
			e.LR = nil
			return s.Apply(store.OpPut, "x", 1, e)
		}, "apply put"},
		{"promote unknown version", func(s *store.Store) error {
			return s.Apply(store.OpPromote, "x", 9, nil)
		}, ""},
		{"rollback with no history", func(s *store.Store) error {
			return s.Apply(store.OpRollback, "x", 0, nil)
		}, ""},
		{"unknown op", func(s *store.Store) error {
			return s.Apply(store.Op("mystery"), "x", 0, nil)
		}, "unknown op"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.run(store.New())
			if err == nil {
				t.Fatal("invalid event applied cleanly")
			}
			if tc.want != "" && !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// TestEncodeMatchesSaveBytes pins that Encode is Save's exact wire form,
// so a snapshot embedded in a log segment and a registry file on disk
// are the same bytes.
func TestEncodeMatchesSaveBytes(t *testing.T) {
	s := store.New()
	lifecycleScript(t, s)
	path := filepath.Join(t.TempDir(), "wrappers.json")
	if err := s.Save(path); err != nil {
		t.Fatal(err)
	}
	onDisk, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	enc, err := s.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(onDisk, enc) {
		t.Fatalf("Encode diverges from Save:\n%s\n--- vs ---\n%s", enc, onDisk)
	}
}

// TestDecodeRoundTrip pins Decode(Encode(s)) == s, including promotion
// history, and that Decode validates as eagerly as Load.
func TestDecodeRoundTrip(t *testing.T) {
	s := store.New()
	lifecycleScript(t, s)
	enc, err := s.Encode()
	if err != nil {
		t.Fatal(err)
	}
	back, err := store.Decode(enc, "round-trip")
	if err != nil {
		t.Fatal(err)
	}
	sameRegistry(t, s, back)
	// The script's promote+rollback leaves the log at [1] (rollback pops).
	if got := back.Promotions("a.example.com"); len(got) != 1 || got[0] != 1 {
		t.Fatalf("promotion log lost in round-trip: %v, want [1]", got)
	}

	poisoned := bytes.Replace(enc, []byte(`"lang"`), []byte(`"gnal"`), 1)
	if _, err := store.Decode(poisoned, "poisoned"); err == nil {
		t.Fatal("Decode accepted an entry with no wrapper language")
	} else if !strings.Contains(err.Error(), "poisoned") {
		t.Fatalf("Decode error %q does not name its source", err)
	}
}

// TestCloneIsDeep pins that Clone shares no durable state with its
// source: mutating either side is invisible to the other.
func TestCloneIsDeep(t *testing.T) {
	s := store.New()
	lifecycleScript(t, s)
	c := s.Clone()
	sameRegistry(t, s, c)
	if _, err := c.Put("c.example.com", testPortable(), store.Meta{}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Promote("a.example.com", 2); err != nil {
		t.Fatal(err)
	}
	if s.Len() == c.Len() {
		t.Fatal("clone and source share site maps")
	}
	if act, _ := c.Active("a.example.com"); act.Version != 1 {
		t.Fatalf("promote on source moved clone's active to v%d", act.Version)
	}
}
