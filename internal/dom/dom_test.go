package dom

import (
	"strings"
	"testing"
)

func sampleTree() *Node {
	doc := NewDocument()
	html := doc.Append(NewElement("html"))
	body := html.Append(NewElement("body"))
	div := body.Append(NewElement("div", "class", "dealerlinks"))
	tr1 := div.Append(NewElement("tr"))
	td1 := tr1.Append(NewElement("td"))
	u := td1.Append(NewElement("u"))
	u.Append(NewText("PORTER FURNITURE"))
	td1.Append(NewElement("br"))
	td1.Append(NewText("201 HWY.30 West"))
	tr2 := div.Append(NewElement("tr"))
	td2 := tr2.Append(NewElement("td"))
	td2.Append(NewText("WOODLAND FURNITURE"))
	return doc
}

func TestAppendSetsParent(t *testing.T) {
	p := NewElement("div")
	c := NewText("x")
	p.Append(c)
	if c.Parent != p {
		t.Fatal("Append did not set parent")
	}
	if len(p.Children) != 1 || p.Children[0] != c {
		t.Fatal("Append did not attach child")
	}
}

func TestAttrAccess(t *testing.T) {
	n := NewElement("div", "class", "a", "id", "x")
	if v, ok := n.Attr("class"); !ok || v != "a" {
		t.Fatalf("Attr(class) = %q, %v", v, ok)
	}
	if _, ok := n.Attr("missing"); ok {
		t.Fatal("Attr(missing) should be absent")
	}
	n.SetAttr("class", "b")
	if v, _ := n.Attr("class"); v != "b" {
		t.Fatalf("SetAttr did not replace: %q", v)
	}
	n.SetAttr("new", "v")
	if v, _ := n.Attr("new"); v != "v" {
		t.Fatalf("SetAttr did not add: %q", v)
	}
}

func TestPreorderOrder(t *testing.T) {
	doc := sampleTree()
	var tags []string
	for _, n := range doc.Preorder() {
		tags = append(tags, n.Tag)
	}
	want := []string{"#document", "html", "body", "div", "tr", "td", "u",
		"#text", "br", "#text", "tr", "td", "#text"}
	if strings.Join(tags, " ") != strings.Join(want, " ") {
		t.Fatalf("preorder = %v, want %v", tags, want)
	}
}

func TestChildNumberCountsSameTagOnly(t *testing.T) {
	p := NewElement("div")
	a1 := p.Append(NewElement("a"))
	b1 := p.Append(NewElement("b"))
	a2 := p.Append(NewElement("a"))
	b2 := p.Append(NewElement("b"))
	if a1.ChildNumber() != 1 || a2.ChildNumber() != 2 {
		t.Fatalf("a child numbers = %d, %d", a1.ChildNumber(), a2.ChildNumber())
	}
	if b1.ChildNumber() != 1 || b2.ChildNumber() != 2 {
		t.Fatalf("b child numbers = %d, %d", b1.ChildNumber(), b2.ChildNumber())
	}
}

func TestChildNumberDetachedAndText(t *testing.T) {
	if NewElement("div").ChildNumber() != 0 {
		t.Fatal("detached element should have child number 0")
	}
	p := NewElement("div")
	txt := p.Append(NewText("x"))
	if txt.ChildNumber() != 0 {
		t.Fatal("text node should have child number 0")
	}
}

func TestAncestorsExcludesDocument(t *testing.T) {
	doc := sampleTree()
	var txt *Node
	doc.Walk(func(n *Node) bool {
		if n.Type == TextNode && strings.Contains(n.Data, "PORTER") {
			txt = n
		}
		return true
	})
	if txt == nil {
		t.Fatal("text node not found")
	}
	var tags []string
	for _, a := range txt.Ancestors() {
		tags = append(tags, a.Tag)
	}
	want := "u td tr div body html"
	if strings.Join(tags, " ") != want {
		t.Fatalf("ancestors = %v, want %v", tags, want)
	}
	if txt.Depth() != 6 {
		t.Fatalf("depth = %d, want 6", txt.Depth())
	}
}

func TestTextAggregation(t *testing.T) {
	doc := sampleTree()
	got := doc.Text()
	want := "PORTER FURNITURE 201 HWY.30 West WOODLAND FURNITURE"
	if got != want {
		t.Fatalf("Text() = %q, want %q", got, want)
	}
}

func TestPathString(t *testing.T) {
	doc := sampleTree()
	var txt *Node
	doc.Walk(func(n *Node) bool {
		if n.Type == TextNode && strings.Contains(n.Data, "WOODLAND") {
			txt = n
		}
		return true
	})
	got := txt.PathString()
	want := "html/body/div/tr[2]/td/#text"
	if got != want {
		t.Fatalf("PathString = %q, want %q", got, want)
	}
}

func TestCloneIsDeepAndDetached(t *testing.T) {
	doc := sampleTree()
	c := doc.Clone()
	if c.Parent != nil {
		t.Fatal("clone should be detached")
	}
	if Serialize(c) != Serialize(doc) {
		t.Fatal("clone serialization differs")
	}
	// Mutating the clone must not affect the original.
	c.Children[0].Children[0].Append(NewText("extra"))
	if Serialize(c) == Serialize(doc) {
		t.Fatal("mutating clone affected original")
	}
}

func TestSerializeEscaping(t *testing.T) {
	doc := NewDocument()
	d := doc.Append(NewElement("div", "title", `a"b<c`))
	d.Append(NewText("x < y & z > w"))
	got := Serialize(doc)
	want := `<div title="a&quot;b&lt;c">x &lt; y &amp; z &gt; w</div>`
	if got != want {
		t.Fatalf("Serialize = %q, want %q", got, want)
	}
}

func TestSerializeVoidElements(t *testing.T) {
	doc := NewDocument()
	d := doc.Append(NewElement("div"))
	d.Append(NewElement("br"))
	d.Append(NewElement("img", "src", "x.png"))
	got := Serialize(doc)
	want := `<div><br><img src="x.png"></div>`
	if got != want {
		t.Fatalf("Serialize = %q, want %q", got, want)
	}
}

func TestSerializeWithSpansLocatesText(t *testing.T) {
	doc := sampleTree()
	html, spans := SerializeWithSpans(doc)
	count := 0
	doc.Walk(func(n *Node) bool {
		if n.Type == TextNode {
			count++
			span, ok := spans[n]
			if !ok {
				t.Fatalf("missing span for %q", n.Data)
			}
			if html[span[0]:span[1]] != EscapeText(n.Data) {
				t.Fatalf("span %v of %q = %q", span, n.Data, html[span[0]:span[1]])
			}
		}
		return true
	})
	if count != 3 {
		t.Fatalf("expected 3 text nodes, got %d", count)
	}
}

func TestRawScriptSerializesUnescaped(t *testing.T) {
	doc := NewDocument()
	s := doc.Append(NewElement("script"))
	s.Raw = true
	s.Append(NewText("if (a < b && c > d) {}"))
	got := Serialize(doc)
	want := "<script>if (a < b && c > d) {}</script>"
	if got != want {
		t.Fatalf("Serialize = %q, want %q", got, want)
	}
}

func TestRootFindsDocument(t *testing.T) {
	doc := sampleTree()
	var deepest *Node
	doc.Walk(func(n *Node) bool { deepest = n; return true })
	if deepest.Root() != doc {
		t.Fatal("Root did not find the document node")
	}
}
