// Package dom provides the document object model used throughout autowrap.
//
// The paper (Sec. 2.1) views a webpage both as an XML/HTML document tree and
// as a flat vector of nodes; this package supplies the tree form plus the
// preorder flattening, child numbering (the xpath td[2]-style index), and
// serialization back to HTML (used by the LR/WIEN inductor, which treats
// documents as character sequences).
package dom

import (
	"sort"
	"strings"
)

// NodeType discriminates the node kinds we model. Comments and doctypes are
// dropped at parse time; scripts/styles are kept as elements with raw text so
// that serialization is faithful, but their text is not extractable.
type NodeType uint8

const (
	// DocumentNode is the synthetic root of a page.
	DocumentNode NodeType = iota
	// ElementNode is a markup element such as <td>.
	ElementNode
	// TextNode is a run of character data.
	TextNode
)

// TextTag is the pseudo tag name used for text nodes when the publication
// model replaces each piece of text with a special node (paper Sec. 6:
// "<#text>").
const TextTag = "#text"

// Attr is a single HTML attribute. Attribute order is preserved from the
// source so serialization is stable.
type Attr struct {
	Key string
	Val string
}

// Node is a node in a parsed HTML document.
type Node struct {
	Type     NodeType
	Tag      string // element tag name (lowercase) or "#text"/"#document"
	Data     string // text content for TextNode
	Attrs    []Attr
	Parent   *Node
	Children []*Node

	// Raw marks elements whose children must serialize without escaping
	// (script, style).
	Raw bool
}

// NewDocument returns an empty document root.
func NewDocument() *Node {
	return &Node{Type: DocumentNode, Tag: "#document"}
}

// NewElement returns a detached element node. Attribute pairs are given as
// (key, value, key, value, ...); an odd trailing key gets an empty value.
func NewElement(tag string, kv ...string) *Node {
	n := &Node{Type: ElementNode, Tag: strings.ToLower(tag)}
	for i := 0; i < len(kv); i += 2 {
		v := ""
		if i+1 < len(kv) {
			v = kv[i+1]
		}
		n.Attrs = append(n.Attrs, Attr{Key: strings.ToLower(kv[i]), Val: v})
	}
	return n
}

// NewText returns a detached text node.
func NewText(data string) *Node {
	return &Node{Type: TextNode, Tag: TextTag, Data: data}
}

// Append attaches child to n and returns child for chaining.
func (n *Node) Append(child *Node) *Node {
	child.Parent = n
	n.Children = append(n.Children, child)
	return child
}

// AppendAll attaches every child in order and returns n.
func (n *Node) AppendAll(children ...*Node) *Node {
	for _, c := range children {
		n.Append(c)
	}
	return n
}

// Attr returns the value of the named attribute and whether it is present.
func (n *Node) Attr(key string) (string, bool) {
	for _, a := range n.Attrs {
		if a.Key == key {
			return a.Val, true
		}
	}
	return "", false
}

// SetAttr sets or replaces an attribute value.
func (n *Node) SetAttr(key, val string) {
	for i := range n.Attrs {
		if n.Attrs[i].Key == key {
			n.Attrs[i].Val = val
			return
		}
	}
	n.Attrs = append(n.Attrs, Attr{Key: key, Val: val})
}

// IsElement reports whether n is an element with the given tag.
func (n *Node) IsElement(tag string) bool {
	return n.Type == ElementNode && n.Tag == tag
}

// Text returns the trimmed text content for a text node, or the
// concatenated trimmed text of all descendant text nodes for other nodes.
func (n *Node) Text() string {
	if n.Type == TextNode {
		return strings.TrimSpace(n.Data)
	}
	var sb strings.Builder
	n.Walk(func(d *Node) bool {
		if d.Type == TextNode {
			t := strings.TrimSpace(d.Data)
			if t != "" {
				if sb.Len() > 0 {
					sb.WriteByte(' ')
				}
				sb.WriteString(t)
			}
		}
		return true
	})
	return sb.String()
}

// Walk visits n and all descendants in preorder. If fn returns false the
// children of the current node are skipped.
func (n *Node) Walk(fn func(*Node) bool) {
	if !fn(n) {
		return
	}
	for _, c := range n.Children {
		c.Walk(fn)
	}
}

// Preorder returns all nodes of the subtree rooted at n in preorder,
// including n itself.
func (n *Node) Preorder() []*Node {
	var out []*Node
	n.Walk(func(d *Node) bool {
		out = append(out, d)
		return true
	})
	return out
}

// ChildNumber returns the 1-based position of n among its same-tag element
// siblings: the index used by xpath filters such as td[2]. Text nodes and
// detached nodes return 0.
func (n *Node) ChildNumber() int {
	if n.Parent == nil || n.Type != ElementNode {
		return 0
	}
	k := 0
	for _, sib := range n.Parent.Children {
		if sib.Type == ElementNode && sib.Tag == n.Tag {
			k++
			if sib == n {
				return k
			}
		}
	}
	return 0
}

// Ancestors returns the chain parent, grandparent, ... up to but excluding
// the document root.
func (n *Node) Ancestors() []*Node {
	var out []*Node
	for p := n.Parent; p != nil && p.Type != DocumentNode; p = p.Parent {
		out = append(out, p)
	}
	return out
}

// Depth returns the number of element ancestors of n.
func (n *Node) Depth() int { return len(n.Ancestors()) }

// Root returns the topmost ancestor of n (the document node for attached
// nodes).
func (n *Node) Root() *Node {
	r := n
	for r.Parent != nil {
		r = r.Parent
	}
	return r
}

// PathString renders the element path from the root to n, e.g.
// "html/body/div[2]/td". Useful in error messages and debugging output.
func (n *Node) PathString() string {
	var parts []string
	cur := n
	if cur.Type == TextNode {
		parts = append(parts, TextTag)
		cur = cur.Parent
	}
	for ; cur != nil && cur.Type == ElementNode; cur = cur.Parent {
		seg := cur.Tag
		if k := cur.ChildNumber(); k > 1 {
			seg += "[" + itoa(k) + "]"
		}
		parts = append(parts, seg)
	}
	// reverse
	for i, j := 0, len(parts)-1; i < j; i, j = i+1, j-1 {
		parts[i], parts[j] = parts[j], parts[i]
	}
	return strings.Join(parts, "/")
}

// SortAttrs orders attributes by key; used by tests that compare trees
// structurally.
func (n *Node) SortAttrs() {
	sort.Slice(n.Attrs, func(i, j int) bool { return n.Attrs[i].Key < n.Attrs[j].Key })
}

// Clone deep-copies the subtree rooted at n. The clone is detached.
func (n *Node) Clone() *Node {
	c := &Node{Type: n.Type, Tag: n.Tag, Data: n.Data, Raw: n.Raw}
	c.Attrs = append([]Attr(nil), n.Attrs...)
	for _, ch := range n.Children {
		c.Append(ch.Clone())
	}
	return c
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	neg := v < 0
	if neg {
		v = -v
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}
