package dom

import "strings"

// VoidElements are HTML elements that never have children and serialize
// without a closing tag.
var VoidElements = map[string]bool{
	"area": true, "base": true, "br": true, "col": true, "embed": true,
	"hr": true, "img": true, "input": true, "link": true, "meta": true,
	"param": true, "source": true, "track": true, "wbr": true,
}

// SerializeOptions controls HTML rendering.
type SerializeOptions struct {
	// TextSpans, when non-nil, receives the byte span [start,end) of every
	// text node's escaped content in the output. The LR inductor uses these
	// spans to locate nodes inside the character stream.
	TextSpans map[*Node][2]int
}

// Serialize renders the subtree rooted at n as HTML.
func Serialize(n *Node) string {
	var sb strings.Builder
	serialize(&sb, n, nil)
	return sb.String()
}

// SerializeWithSpans renders the subtree and records text-node spans.
func SerializeWithSpans(n *Node) (string, map[*Node][2]int) {
	spans := make(map[*Node][2]int)
	var sb strings.Builder
	serialize(&sb, n, spans)
	return sb.String(), spans
}

func serialize(sb *strings.Builder, n *Node, spans map[*Node][2]int) {
	switch n.Type {
	case DocumentNode:
		for _, c := range n.Children {
			serialize(sb, c, spans)
		}
	case TextNode:
		start := sb.Len()
		if n.Parent != nil && n.Parent.Raw {
			sb.WriteString(n.Data)
		} else {
			sb.WriteString(EscapeText(n.Data))
		}
		if spans != nil {
			spans[n] = [2]int{start, sb.Len()}
		}
	case ElementNode:
		sb.WriteByte('<')
		sb.WriteString(n.Tag)
		for _, a := range n.Attrs {
			sb.WriteByte(' ')
			sb.WriteString(a.Key)
			sb.WriteString(`="`)
			sb.WriteString(EscapeAttr(a.Val))
			sb.WriteByte('"')
		}
		sb.WriteByte('>')
		if VoidElements[n.Tag] {
			return
		}
		for _, c := range n.Children {
			serialize(sb, c, spans)
		}
		sb.WriteString("</")
		sb.WriteString(n.Tag)
		sb.WriteByte('>')
	}
}

// EscapeText escapes character data for HTML text content.
func EscapeText(s string) string {
	if !strings.ContainsAny(s, "&<>") {
		return s
	}
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;")
	return r.Replace(s)
}

// EscapeAttr escapes character data for a double-quoted attribute value.
func EscapeAttr(s string) string {
	if !strings.ContainsAny(s, `&<>"`) {
		return s
	}
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}
