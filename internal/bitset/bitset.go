// Package bitset implements dense bitsets over node ordinals. Feature-based
// wrapper induction (paper Secs. 4.2 and 5) reduces every inductor call to a
// handful of AND operations over these sets, which is what makes enumerating
// the wrapper space across hundreds of websites cheap.
package bitset

import (
	"hash/fnv"
	"math/bits"
)

// Set is a fixed-universe bitset. The zero value is an empty set over an
// empty universe; use New to size it.
type Set struct {
	words []uint64
	n     int // universe size in bits
}

// New returns an empty set over a universe of n elements.
func New(n int) *Set {
	return &Set{words: make([]uint64, (n+63)/64), n: n}
}

// Full returns a set with all n elements present.
func Full(n int) *Set {
	s := New(n)
	for i := range s.words {
		s.words[i] = ^uint64(0)
	}
	s.trim()
	return s
}

// FromIndices builds a set over universe n containing the given indices.
func FromIndices(n int, idx []int) *Set {
	s := New(n)
	for _, i := range idx {
		s.Add(i)
	}
	return s
}

func (s *Set) trim() {
	if rem := s.n % 64; rem != 0 && len(s.words) > 0 {
		s.words[len(s.words)-1] &= (uint64(1) << uint(rem)) - 1
	}
}

// Len returns the universe size.
func (s *Set) Len() int { return s.n }

// Add inserts element i.
func (s *Set) Add(i int) {
	if i < 0 || i >= s.n {
		panic("bitset: index out of range")
	}
	s.words[i/64] |= 1 << uint(i%64)
}

// Remove deletes element i if present.
func (s *Set) Remove(i int) {
	if i < 0 || i >= s.n {
		panic("bitset: index out of range")
	}
	s.words[i/64] &^= 1 << uint(i%64)
}

// Has reports whether element i is present.
func (s *Set) Has(i int) bool {
	if i < 0 || i >= s.n {
		return false
	}
	return s.words[i/64]&(1<<uint(i%64)) != 0
}

// Count returns the number of elements present.
func (s *Set) Count() int {
	c := 0
	for _, w := range s.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// Clone returns an independent copy.
func (s *Set) Clone() *Set {
	c := &Set{words: make([]uint64, len(s.words)), n: s.n}
	copy(c.words, s.words)
	return c
}

// AndWith intersects s with o in place.
func (s *Set) AndWith(o *Set) {
	s.mustMatch(o)
	for i := range s.words {
		s.words[i] &= o.words[i]
	}
}

// OrWith unions o into s in place.
func (s *Set) OrWith(o *Set) {
	s.mustMatch(o)
	for i := range s.words {
		s.words[i] |= o.words[i]
	}
}

// AndNotWith removes o's elements from s in place.
func (s *Set) AndNotWith(o *Set) {
	s.mustMatch(o)
	for i := range s.words {
		s.words[i] &^= o.words[i]
	}
}

// And returns the intersection as a new set.
func And(a, b *Set) *Set {
	c := a.Clone()
	c.AndWith(b)
	return c
}

// Or returns the union as a new set.
func Or(a, b *Set) *Set {
	c := a.Clone()
	c.OrWith(b)
	return c
}

// AndNot returns a \ b as a new set.
func AndNot(a, b *Set) *Set {
	c := a.Clone()
	c.AndNotWith(b)
	return c
}

// AndCount returns |a ∩ b| without allocating.
func AndCount(a, b *Set) int {
	a.mustMatch(b)
	c := 0
	for i := range a.words {
		c += bits.OnesCount64(a.words[i] & b.words[i])
	}
	return c
}

// Equal reports whether the two sets contain the same elements.
func (s *Set) Equal(o *Set) bool {
	if s.n != o.n {
		return false
	}
	for i := range s.words {
		if s.words[i] != o.words[i] {
			return false
		}
	}
	return true
}

// SubsetOf reports whether every element of s is in o.
func (s *Set) SubsetOf(o *Set) bool {
	s.mustMatch(o)
	for i := range s.words {
		if s.words[i]&^o.words[i] != 0 {
			return false
		}
	}
	return true
}

// Empty reports whether the set has no elements.
func (s *Set) Empty() bool {
	for _, w := range s.words {
		if w != 0 {
			return false
		}
	}
	return true
}

// Indices returns the present elements in increasing order.
func (s *Set) Indices() []int {
	out := make([]int, 0, s.Count())
	for wi, w := range s.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			out = append(out, wi*64+b)
			w &= w - 1
		}
	}
	return out
}

// ForEach calls fn for each present element in increasing order.
func (s *Set) ForEach(fn func(i int)) {
	for wi, w := range s.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			fn(wi*64 + b)
			w &= w - 1
		}
	}
}

// Signature returns a hash identifying the set contents. Wrapper-space
// deduplication keys on this plus Equal verification on collision.
func (s *Set) Signature() uint64 {
	h := fnv.New64a()
	var buf [8]byte
	for _, w := range s.words {
		for i := 0; i < 8; i++ {
			buf[i] = byte(w >> (8 * uint(i)))
		}
		h.Write(buf[:])
	}
	return h.Sum64()
}

func (s *Set) mustMatch(o *Set) {
	if s.n != o.n {
		panic("bitset: mismatched universes")
	}
}
