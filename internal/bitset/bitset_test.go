package bitset

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestBasicOps(t *testing.T) {
	s := New(130)
	if !s.Empty() || s.Count() != 0 || s.Len() != 130 {
		t.Fatal("new set not empty")
	}
	s.Add(0)
	s.Add(64)
	s.Add(129)
	if s.Count() != 3 {
		t.Fatalf("count = %d", s.Count())
	}
	for _, i := range []int{0, 64, 129} {
		if !s.Has(i) {
			t.Fatalf("missing %d", i)
		}
	}
	if s.Has(1) || s.Has(128) {
		t.Fatal("spurious members")
	}
	s.Remove(64)
	if s.Has(64) || s.Count() != 2 {
		t.Fatal("remove failed")
	}
	got := s.Indices()
	if len(got) != 2 || got[0] != 0 || got[1] != 129 {
		t.Fatalf("indices = %v", got)
	}
}

func TestHasOutOfRange(t *testing.T) {
	s := New(10)
	if s.Has(-1) || s.Has(10) || s.Has(1000) {
		t.Fatal("out-of-range Has must be false")
	}
}

func TestAddOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(10).Add(10)
}

func TestFullTrimsTail(t *testing.T) {
	s := Full(70)
	if s.Count() != 70 {
		t.Fatalf("Full(70).Count() = %d", s.Count())
	}
	if s.Has(70) {
		t.Fatal("element beyond universe")
	}
}

func TestMismatchedUniversePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(10).AndWith(New(20))
}

func TestSignatureDistinguishes(t *testing.T) {
	a := FromIndices(100, []int{1, 5, 9})
	b := FromIndices(100, []int{1, 5, 10})
	c := FromIndices(100, []int{1, 5, 9})
	if a.Signature() == b.Signature() {
		t.Fatal("different sets share a signature (unlikely collision)")
	}
	if a.Signature() != c.Signature() {
		t.Fatal("equal sets have different signatures")
	}
}

// reference is a map-based model the property tests compare against.
type reference map[int]bool

func refFrom(idx []int) reference {
	r := reference{}
	for _, i := range idx {
		r[i] = true
	}
	return r
}

func (r reference) indices() []int {
	var out []int
	for i := range r {
		out = append(out, i)
	}
	sort.Ints(out)
	return out
}

func equalIdx(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

const propUniverse = 200

func randIdx(rng *rand.Rand) []int {
	n := rng.Intn(40)
	out := make([]int, n)
	for i := range out {
		out[i] = rng.Intn(propUniverse)
	}
	return out
}

func TestPropertySetAlgebra(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for iter := 0; iter < 500; iter++ {
		ia, ib := randIdx(rng), randIdx(rng)
		a, b := FromIndices(propUniverse, ia), FromIndices(propUniverse, ib)
		ra, rb := refFrom(ia), refFrom(ib)

		and := And(a, b)
		wantAnd := reference{}
		for i := range ra {
			if rb[i] {
				wantAnd[i] = true
			}
		}
		if !equalIdx(and.Indices(), wantAnd.indices()) {
			t.Fatalf("And mismatch: %v vs %v", and.Indices(), wantAnd.indices())
		}
		if and.Count() != AndCount(a, b) {
			t.Fatal("AndCount disagrees with And().Count()")
		}

		or := Or(a, b)
		wantOr := reference{}
		for i := range ra {
			wantOr[i] = true
		}
		for i := range rb {
			wantOr[i] = true
		}
		if !equalIdx(or.Indices(), wantOr.indices()) {
			t.Fatal("Or mismatch")
		}

		diff := AndNot(a, b)
		wantDiff := reference{}
		for i := range ra {
			if !rb[i] {
				wantDiff[i] = true
			}
		}
		if !equalIdx(diff.Indices(), wantDiff.indices()) {
			t.Fatal("AndNot mismatch")
		}

		if and.SubsetOf(a) != true || and.SubsetOf(b) != true {
			t.Fatal("intersection must be subset of operands")
		}
		if !a.SubsetOf(or) || !b.SubsetOf(or) {
			t.Fatal("operands must be subsets of union")
		}
	}
}

func TestQuickCloneIndependence(t *testing.T) {
	f := func(raw []uint16) bool {
		idx := make([]int, len(raw))
		for i, v := range raw {
			idx[i] = int(v) % propUniverse
		}
		a := FromIndices(propUniverse, idx)
		c := a.Clone()
		if !a.Equal(c) {
			return false
		}
		// Mutating the clone must not change the original.
		probe := (len(raw) * 13) % propUniverse
		before := a.Has(probe)
		c.Add(probe)
		if a.Has(probe) != before {
			return false
		}
		c.Remove(probe)
		if a.Has(probe) != before {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestForEachMatchesIndices(t *testing.T) {
	s := FromIndices(propUniverse, []int{3, 64, 65, 127, 128, 199})
	var got []int
	s.ForEach(func(i int) { got = append(got, i) })
	if !equalIdx(got, s.Indices()) {
		t.Fatalf("ForEach %v != Indices %v", got, s.Indices())
	}
}

func BenchmarkAnd(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	x := FromIndices(4096, randIdxN(rng, 500, 4096))
	y := FromIndices(4096, randIdxN(rng, 500, 4096))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		x.Clone().AndWith(y)
	}
}

func randIdxN(rng *rand.Rand, n, universe int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = rng.Intn(universe)
	}
	return out
}
