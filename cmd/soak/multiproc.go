package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"syscall"
	"time"

	"autowrap/internal/serve"
	"autowrap/internal/shard"
)

// multiproc is the cross-process soak mode: instead of booting the fleet
// in-process, it spawns real wrapserved shard processes plus a
// forwarding front process, drives extract traffic through the front,
// kills one shard mid-run, and asserts the fleet degrades to partial
// availability — the dead shard's partition answers 503 naming the
// shard, every other partition keeps serving — then drains in order
// (front first, then the survivors) and verifies each process's audit
// ledger offline with wrapserved -audit-verify.
//
// Invariants (same reporting contract as the in-process soak):
//
//	multiproc-boot      every process reaches healthy within its budget
//	multiproc-parity    extract via the front == extract direct-to-shard
//	multiproc-no-panic  no 5xx before the kill, no dead connections
//	multiproc-partial   after the kill: dead partition 503s naming the
//	                    shard, surviving partition serves 200, the front
//	                    stays healthy and names the dead peer
//	multiproc-drain     SIGTERM front exits 0 before the shards are
//	                    signaled; surviving shards then exit 0
//	multiproc-audit     every shard's audit ledger verifies offline
type multiproc struct {
	o       options
	log     *log.Logger
	viol    *violations
	workDir string
	bin     string
	client  *http.Client

	shardAddrs []string
	shardCmds  []*exec.Cmd
	auditPaths []string
	frontAddr  string
	frontCmd   *exec.Cmd
}

var mpElapsedRe = regexp.MustCompile(`"elapsed_us":[0-9]+`)

func runMultiproc(o options) int {
	m := &multiproc{
		o:      o,
		log:    log.New(os.Stderr, "soak-mp: ", log.LstdFlags),
		viol:   &violations{},
		client: &http.Client{Timeout: 15 * time.Second},
	}
	if err := m.run(); err != nil {
		fmt.Fprintln(os.Stderr, "soak:", err)
		return 1
	}
	if m.viol.report(os.Stderr) {
		return 1
	}
	fmt.Printf("soak: multiproc invariants held (%d shard processes + front, seed %d)\n",
		m.o.shards, m.o.seed)
	return 0
}

func (m *multiproc) run() error {
	if m.o.shards < 2 {
		return fmt.Errorf("-multiproc needs -shards >= 2 (one process is killed mid-run)")
	}
	dir, err := os.MkdirTemp("", "soak-mp-*")
	if err != nil {
		return err
	}
	m.workDir = dir
	defer os.RemoveAll(dir)
	defer m.killAll()

	// The corpora and learned registry come from the same machinery as
	// the in-process soak; only the serving plane differs.
	h := &harness{o: m.o, log: m.log, viol: m.viol}
	if err := h.buildCorpora(); err != nil {
		return err
	}
	st, err := h.learnStore()
	if err != nil {
		return err
	}
	seedPath := filepath.Join(dir, "seed.json")
	if err := st.Save(seedPath); err != nil {
		return err
	}

	if err := m.buildBinary(); err != nil {
		return err
	}
	if err := m.spawnFleet(seedPath); err != nil {
		return err
	}
	m.awaitHealthy()

	ring := shard.NewRing(m.o.shards, m.o.vnodes)
	m.checkParity(ring, h.sites)
	m.driveTraffic(h.sites)

	victim := int(m.o.seed) % m.o.shards
	m.logf("killing shard %d (%s) mid-run", victim, m.shardAddrs[victim])
	_ = m.shardCmds[victim].Process.Kill()
	_, _ = m.shardCmds[victim].Process.Wait()
	m.checkPartialAvailability(ring, h.sites, victim)

	m.drainOrdered(victim)
	m.checkAuditLedgers(victim)
	return nil
}

// buildBinary compiles cmd/wrapserved into the work dir (CI's build
// cache makes this near-free after the first run).
func (m *multiproc) buildBinary() error {
	m.bin = filepath.Join(m.workDir, "wrapserved")
	cmd := exec.Command("go", "build", "-o", m.bin, "autowrap/cmd/wrapserved")
	out, err := cmd.CombinedOutput()
	if err != nil {
		return fmt.Errorf("building wrapserved: %v\n%s", err, out)
	}
	return nil
}

// freeAddr reserves an ephemeral localhost port and releases it for the
// child process to claim.
func freeAddr() (string, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", err
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr, nil
}

// spawnFleet boots one wrapserved process per shard (each with its own
// copy of the seed registry and its own audit ledger) plus the
// forwarding front.
func (m *multiproc) spawnFleet(seedPath string) error {
	seed, err := os.ReadFile(seedPath)
	if err != nil {
		return err
	}
	for k := 0; k < m.o.shards; k++ {
		addr, err := freeAddr()
		if err != nil {
			return err
		}
		storePath := filepath.Join(m.workDir, fmt.Sprintf("shard%d.json", k))
		if err := os.WriteFile(storePath, seed, 0o644); err != nil {
			return err
		}
		auditPath := filepath.Join(m.workDir, fmt.Sprintf("shard%d-audit.jsonl", k))
		cmd := exec.Command(m.bin,
			"-role", "shard",
			"-shard-index", fmt.Sprint(k),
			"-shards", fmt.Sprint(m.o.shards),
			"-vnodes", fmt.Sprint(m.o.vnodes),
			"-store", storePath,
			"-store-backend", m.o.storeBackend,
			"-audit-log", auditPath,
			"-addr", addr,
			"-drain-timeout", "10s",
		)
		cmd.Stderr = m.procLog(fmt.Sprintf("shard%d", k))
		if err := cmd.Start(); err != nil {
			return fmt.Errorf("spawning shard %d: %w", k, err)
		}
		m.shardAddrs = append(m.shardAddrs, addr)
		m.shardCmds = append(m.shardCmds, cmd)
		m.auditPaths = append(m.auditPaths, auditPath)
	}
	addr, err := freeAddr()
	if err != nil {
		return err
	}
	m.frontAddr = addr
	// The front retries its boot handshake implicitly: unreachable peers
	// only degrade, and per-request ring pinning still protects every
	// call, so front and shards can start concurrently.
	cmd := exec.Command(m.bin,
		"-role", "front",
		"-peers", strings.Join(m.shardAddrs, ","),
		"-vnodes", fmt.Sprint(m.o.vnodes),
		"-addr", addr,
		"-drain-timeout", "10s",
	)
	cmd.Stderr = m.procLog("front")
	if err := cmd.Start(); err != nil {
		return fmt.Errorf("spawning front: %w", err)
	}
	m.frontCmd = cmd
	return nil
}

// procLog prefixes a child process's stderr into ours when -v is set,
// and discards it otherwise.
func (m *multiproc) procLog(name string) io.Writer {
	if !m.o.verbose {
		return io.Discard
	}
	pr, pw := io.Pipe()
	go func() {
		buf := make([]byte, 4096)
		for {
			n, err := pr.Read(buf)
			if n > 0 {
				m.log.Printf("[%s] %s", name, bytes.TrimRight(buf[:n], "\n"))
			}
			if err != nil {
				return
			}
		}
	}()
	return pw
}

// awaitHealthy polls every process's /healthz until it answers 200.
func (m *multiproc) awaitHealthy() {
	targets := append([]string{}, m.shardAddrs...)
	targets = append(targets, m.frontAddr)
	for _, addr := range targets {
		deadline := time.Now().Add(20 * time.Second)
		for {
			resp, err := m.client.Get("http://" + addr + "/healthz")
			if err == nil {
				resp.Body.Close()
				if resp.StatusCode == http.StatusOK {
					break
				}
			}
			if time.Now().After(deadline) {
				m.viol.add("multiproc-boot", fmt.Sprintf("%s never became healthy (last: %v)", addr, err))
				break
			}
			time.Sleep(50 * time.Millisecond)
		}
	}
}

func (m *multiproc) extract(base string, site *soakSite, page int) (int, []byte, error) {
	body, _ := json.Marshal(map[string]any{
		"site": site.name,
		"page": map[string]string{"id": fmt.Sprintf("p%d", page), "html": site.clean[page%len(site.clean)]},
	})
	resp, err := m.client.Post("http://"+base+"/v1/extract", "application/json", bytes.NewReader(body))
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		return 0, nil, err
	}
	return resp.StatusCode, mpElapsedRe.ReplaceAll(out, []byte(`"elapsed_us":0`)), nil
}

// checkParity asserts extract-through-the-front answers the same bytes
// as extract direct-to-the-owning-shard (timing masked).
func (m *multiproc) checkParity(ring *shard.Ring, sites []*soakSite) {
	for _, s := range sites {
		owner := ring.Owner(s.name)
		fc, fb, ferr := m.extract(m.frontAddr, s, 0)
		dc, db, derr := m.extract(m.shardAddrs[owner], s, 0)
		if ferr != nil || derr != nil {
			m.viol.add("multiproc-parity", fmt.Sprintf("%s: front err %v, direct err %v", s.name, ferr, derr))
			continue
		}
		if fc != dc || !bytes.Equal(fb, db) {
			m.viol.add("multiproc-parity", fmt.Sprintf(
				"%s: front %d %s != shard %d direct %d %s", s.name, fc, fb, owner, dc, db))
		}
	}
}

// driveTraffic sends steady extract traffic through the front for a
// slice of the soak budget; before any kill, nothing may 5xx.
func (m *multiproc) driveTraffic(sites []*soakSite) {
	dur := m.o.duration / 3
	m.logf("traffic: %v through front %s", dur, m.frontAddr)
	stop := time.Now().Add(dur)
	n := 0
	for time.Now().Before(stop) {
		s := sites[n%len(sites)]
		code, body, err := m.extract(m.frontAddr, s, n)
		if err != nil {
			m.viol.add("multiproc-no-panic", fmt.Sprintf("extract %s: %v", s.name, err))
		} else if code >= 500 {
			m.viol.add("multiproc-no-panic", fmt.Sprintf("extract %s: status %d: %s", s.name, code, body))
		}
		n++
		time.Sleep(time.Second / time.Duration(max(m.o.qps, 1)))
	}
	m.logf("traffic: %d requests", n)
}

// checkPartialAvailability asserts the fleet degrades by partition: the
// dead shard's sites answer 503 naming the shard and its address,
// everything else keeps serving, and the front's own health stays 200
// with the dead peer reported by name.
func (m *multiproc) checkPartialAvailability(ring *shard.Ring, sites []*soakSite, victim int) {
	for _, s := range sites {
		code, body, err := m.extract(m.frontAddr, s, 1)
		if err != nil {
			m.viol.add("multiproc-partial", fmt.Sprintf("extract %s after kill: %v", s.name, err))
			continue
		}
		if ring.Owner(s.name) == victim {
			want := fmt.Sprintf("shard %d (%s)", victim, m.shardAddrs[victim])
			if code != http.StatusServiceUnavailable || !strings.Contains(string(body), want) {
				m.viol.add("multiproc-partial", fmt.Sprintf(
					"%s on dead shard answered %d %s, want 503 naming %q", s.name, code, body, want))
			}
		} else if code != http.StatusOK {
			m.viol.add("multiproc-partial", fmt.Sprintf(
				"%s on surviving shard answered %d %s, want 200", s.name, code, body))
		}
	}
	resp, err := m.client.Get("http://" + m.frontAddr + "/healthz")
	if err != nil {
		m.viol.add("multiproc-partial", fmt.Sprintf("front healthz after kill: %v", err))
		return
	}
	defer resp.Body.Close()
	var h serve.FleetHealthzResponse
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		m.viol.add("multiproc-partial", fmt.Sprintf("front healthz decode: %v", err))
		return
	}
	if resp.StatusCode != http.StatusOK {
		m.viol.add("multiproc-partial", fmt.Sprintf("front healthz %d after one shard died, want 200", resp.StatusCode))
	}
	if len(h.Peers) != m.o.shards || h.Peers[victim].OK || h.Peers[victim].Error == "" {
		m.viol.add("multiproc-partial", fmt.Sprintf("front peers %+v: shard %d not reported down by name", h.Peers, victim))
	}
}

// drainOrdered performs the fleet drain in production order — front
// first (it stops admitting, finishes in-flight forwards, drains peers),
// then the surviving shard processes — and demands clean exits.
func (m *multiproc) drainOrdered(victim int) {
	wait := func(name string, cmd *exec.Cmd) {
		done := make(chan error, 1)
		go func() { done <- cmd.Wait() }()
		select {
		case err := <-done:
			if err != nil {
				m.viol.add("multiproc-drain", fmt.Sprintf("%s exited dirty: %v", name, err))
			}
		case <-time.After(20 * time.Second):
			m.viol.add("multiproc-drain", fmt.Sprintf("%s did not exit within 20s of SIGTERM", name))
			_ = cmd.Process.Kill()
		}
	}
	_ = m.frontCmd.Process.Signal(syscall.SIGTERM)
	wait("front", m.frontCmd)
	m.frontCmd = nil
	for k, cmd := range m.shardCmds {
		if k == victim {
			continue
		}
		_ = cmd.Process.Signal(syscall.SIGTERM)
		wait(fmt.Sprintf("shard%d", k), cmd)
	}
	m.shardCmds = nil
}

// checkAuditLedgers verifies every shard's chain offline through the
// shipped verb — the same check an operator runs.
func (m *multiproc) checkAuditLedgers(victim int) {
	for k, path := range m.auditPaths {
		if _, err := os.Stat(path); err != nil {
			// A shard that never appended (or the killed one racing its
			// first write) legitimately has no ledger.
			continue
		}
		out, err := exec.Command(m.bin, "-audit-verify", path).CombinedOutput()
		if err != nil {
			m.viol.add("multiproc-audit", fmt.Sprintf("shard %d ledger %s: %v: %s", k, path, err, out))
		}
	}
}

// killAll force-kills whatever is still running (error paths only; the
// happy path already waited on everything).
func (m *multiproc) killAll() {
	if m.frontCmd != nil && m.frontCmd.Process != nil {
		_ = m.frontCmd.Process.Kill()
		_, _ = m.frontCmd.Process.Wait()
	}
	for _, cmd := range m.shardCmds {
		if cmd != nil && cmd.Process != nil {
			_ = cmd.Process.Kill()
			_, _ = cmd.Process.Wait()
		}
	}
}

func (m *multiproc) logf(format string, args ...any) {
	if m.o.verbose {
		m.log.Printf(format, args...)
	}
}
