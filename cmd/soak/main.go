// Command soak is the deterministic soak-and-chaos harness for the
// serving plane: it boots a complete wrapserved fleet in-process (1 shard
// or N, behind a real TCP listener), drives mixed extract/learn/repair
// traffic from generated sitegen corpora at a target QPS, and concurrently
// injects the faults a production fleet meets — template-drift storms,
// malformed and truncated bodies, corrupt store entries written between
// epochs, canceled and queue-full jobs, slow and disconnecting clients,
// mid-run promote/rollback flips — while asserting hard invariants the
// whole time. It exits 0 only when every invariant held; any violation is
// printed as "INVARIANT VIOLATED: <name>: <detail>" and the exit code is 1.
//
// Usage:
//
//	soak -duration 45s -seed 1 -shards 4        # the CI smoke run
//	soak -duration 15m -shards 4 -qps 200       # the nightly long mode
//	soak -duration 45s -store-backend log       # segmented-log durability under chaos
//	soak -duration 15s -shards 2 -multiproc     # real shard processes + front; kill one mid-run
//	soak -duration 5s -break leak               # prove the harness bites
//
// Invariants (the names a violation is reported under):
//
//	goroutine-leak     goroutine identities return to the pre-boot baseline
//	heap-bounded       HeapAlloc does not grow monotonically across GC cycles
//	no-stuck-jobs      no job is left running past its deadline, ever
//	gate-ledger        client-observed admitted/rejected/timed-out == gate counters
//	jobs-ledger        per-kind submitted == done + failed + canceled; no
//	                   job canceled that the harness did not cancel itself
//	metrics-consistent fleet /metrics == Σ per-shard == Σ per-site, exactly
//	family-purity      every 200 response serves one wrapper family, matching
//	                   its reported version (no hot-swap bleed mid-request)
//	drift-healed       auto-repair heals every injected drift within the run
//	clean-drain        SetDraining → Shutdown → Drain completes in budget
//	no-panic           no 5xx surprises, no dead connections on sane requests
//	store-recovery     with -store-backend file: a corrupt registry entry is
//	                   overwritten by the next persist mid-run; at end, strict
//	                   Load refuses a poisoned file naming the site while
//	                   LoadRecovered salvages the rest. With -store-backend
//	                   log: a torn frame injected into the live segment
//	                   mid-run never disturbs serving, and the end-of-run
//	                   kill-and-reopen drill recovers the log to a consistent
//	                   registry — reported, idempotent, and again after fresh
//	                   tail garbage
//	audit-chain-intact the audit ledger the run wrote verifies from genesis:
//	                   every hash link and Merkle checkpoint holds, and the
//	                   run's lifecycle events (promotes at minimum) are there
//
// Determinism: every fault schedule — storm times and victims, malformed
// body streams, the corrupt-entry victim, burst timing — is derived from
// -seed, so a failure at seed 7 reproduces at seed 7. (Goroutine
// interleaving is the operating system's; the faults are ours.)
//
// -break deliberately sabotages one invariant (leak | stuck | heal |
// ledger | audit) to prove the harness fails loudly rather than vacuously;
// CI runs one sabotaged mode and requires a non-zero exit. -break audit
// flips one byte of the closed ledger before verification, which
// audit-chain-intact must catch naming the damaged sequence number.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"time"

	"autowrap/internal/chaos"
	"autowrap/internal/shard"
)

type options struct {
	duration     time.Duration
	seed         int64
	shards       int
	qps          int
	sites        int
	vnodes       int
	storeBackend string
	breakMode    string
	multiproc    bool
	verbose      bool
}

func main() {
	var o options
	flag.DurationVar(&o.duration, "duration", 45*time.Second, "total soak budget (traffic runs ~72% of it; healing and teardown use the rest)")
	flag.Int64Var(&o.seed, "seed", 1, "master seed for corpora, traffic mix and the whole fault schedule")
	flag.IntVar(&o.shards, "shards", 1, "serving shards (1 = single server, >1 = consistent-hash fleet)")
	flag.IntVar(&o.qps, "qps", 120, "target request rate across all traffic workers")
	flag.IntVar(&o.sites, "sites", 4, "learned dealer sites serving extract traffic")
	flag.IntVar(&o.vnodes, "vnodes", shard.DefaultVNodes, "virtual nodes per shard on the routing ring")
	flag.StringVar(&o.storeBackend, "store-backend", "file", "durability backend under chaos: file (atomic JSON registry) | log (append-only segmented log)")
	flag.StringVar(&o.breakMode, "break", "", "deliberately violate one invariant to prove the harness catches it: leak | stuck | heal | ledger | audit")
	flag.BoolVar(&o.multiproc, "multiproc", false, "spawn real wrapserved shard processes behind a forwarding front, kill one mid-run, and assert partial availability + ordered drain")
	flag.BoolVar(&o.verbose, "v", false, "log every fault injection and invariant checkpoint")
	flag.Parse()

	if o.multiproc {
		if o.breakMode != "" {
			fmt.Fprintln(os.Stderr, "soak: -break is not supported with -multiproc")
			os.Exit(2)
		}
		os.Exit(runMultiproc(o))
	}

	switch o.breakMode {
	case "", "leak", "stuck", "heal", "ledger", "audit":
	default:
		fmt.Fprintf(os.Stderr, "soak: unknown -break mode %q\n", o.breakMode)
		os.Exit(2)
	}
	if o.storeBackend != "file" && o.storeBackend != "log" {
		fmt.Fprintf(os.Stderr, "soak: unknown -store-backend %q (want file or log)\n", o.storeBackend)
		os.Exit(2)
	}
	if o.shards < 1 || o.sites < 1 || o.qps < 1 || o.duration < 5*time.Second {
		fmt.Fprintln(os.Stderr, "soak: need -shards >= 1, -sites >= 1, -qps >= 1, -duration >= 5s")
		os.Exit(2)
	}

	h, err := newHarness(o)
	if err != nil {
		fmt.Fprintln(os.Stderr, "soak:", err)
		os.Exit(1)
	}
	h.run()
	if h.viol.report(os.Stderr) {
		os.Exit(1)
	}
	fmt.Printf("soak: all invariants held (%s, seed %d, %d shard(s), %d requests)\n",
		o.duration, o.seed, o.shards, h.ledger.total())
}

// run executes the whole timeline: traffic + chaos, heal-wait, quiesce,
// drain, teardown, post-mortem invariants. Violations accumulate in
// h.viol instead of aborting — a soak that dies on the first anomaly
// hides every anomaly behind it.
func (h *harness) run() {
	defer os.RemoveAll(h.workDir)

	h.startHeapSampler()
	h.startMonitor()

	if h.o.breakMode == "leak" {
		// A goroutine parked on a channel nobody writes: the classic leak.
		go func() { <-make(chan struct{}) }()
	}

	trafficDur := time.Duration(float64(h.o.duration) * 0.72)
	h.logf("traffic: %v at %d qps against %s (%d shard(s))", trafficDur, h.o.qps, h.baseURL, h.o.shards)
	h.runTraffic(trafficDur)

	h.awaitHeals(time.Now().Add(h.o.duration - trafficDur + 15*time.Second))
	h.stopMaintainers()
	h.awaitJobsIdle(20 * time.Second)

	if h.o.breakMode == "ledger" {
		// One valid extract the client ledger never hears about.
		h.rawUnrecordedExtract()
	}

	h.checkGateLedger()
	h.checkMetricsConsistent()
	h.checkJobsLedger()

	h.drainAndTeardown()

	h.stopMonitor()
	h.checkGoroutineBaseline()
	h.checkHeapBounded()
	rng := rand.New(rand.NewSource(h.o.seed + 7))
	if h.o.storeBackend == "log" {
		h.checkLogRecovery(rng)
	} else {
		h.checkStoreRecovery(rng)
	}
	if h.o.breakMode == "audit" {
		// Silent at-rest tampering of the closed ledger: one flipped bit,
		// which the chain walk must pin to a sequence number.
		if off, err := chaos.FlipByte(h.auditPath, rng); err != nil {
			h.log.Printf("break audit: %v", err)
		} else {
			h.logf("break audit: flipped a bit at byte %d of %s", off, h.auditPath)
		}
	}
	h.checkAuditChain()
}

func (h *harness) logf(format string, args ...any) {
	if h.o.verbose {
		h.log.Printf(format, args...)
	}
}
