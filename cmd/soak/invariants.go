package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"autowrap/internal/audit"
	"autowrap/internal/chaos"
	"autowrap/internal/jobs"
	"autowrap/internal/serve"
	"autowrap/internal/store"
	"autowrap/internal/store/logstore"
)

// violations accumulates invariant failures instead of aborting on the
// first: one hostile run should report everything it broke. Duplicate
// (name, detail) pairs collapse, and per-name details are capped so a
// high-QPS failure mode cannot flood the report.
type violations struct {
	mu    sync.Mutex
	order []string
	byKey map[string][]string
}

const maxDetailsPerInvariant = 5

func (v *violations) add(name, detail string) {
	v.mu.Lock()
	defer v.mu.Unlock()
	if v.byKey == nil {
		v.byKey = make(map[string][]string)
	}
	if _, seen := v.byKey[name]; !seen {
		v.order = append(v.order, name)
	}
	ds := v.byKey[name]
	if len(ds) >= maxDetailsPerInvariant {
		return
	}
	for _, d := range ds {
		if d == detail {
			return
		}
	}
	v.byKey[name] = append(ds, detail)
}

// report prints every violation and says whether there were any.
func (v *violations) report(w io.Writer) bool {
	v.mu.Lock()
	defer v.mu.Unlock()
	for _, name := range v.order {
		for _, d := range v.byKey[name] {
			fmt.Fprintf(w, "INVARIANT VIOLATED: %s: %s\n", name, d)
		}
	}
	return len(v.order) > 0
}

// --- live monitors ---

// startHeapSampler records HeapAlloc after a forced GC every 5s. The
// heap-bounded invariant fires only on monotonic growth across every
// sample AND a final size far past the first — bounded sawtooth churn
// under load is healthy, a straight line up is a leak.
func (h *harness) startHeapSampler() {
	h.sampleHeap()
}

func (h *harness) sampleHeap() {
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	h.heapMu.Lock()
	h.heapSamples = append(h.heapSamples, ms.HeapAlloc)
	h.heapMu.Unlock()
}

// startMonitor polls the serving plane every 2s while the run is live:
// gate bounds and monotonicity, counter sanity against the client ledger,
// and the job planes for anything stuck in running past its deadline.
func (h *harness) startMonitor() {
	go func() {
		defer close(h.monitorDone)
		var prev serve.GateSnapshot
		ticks := 0
		for {
			select {
			case <-h.monitorStop:
				return
			case <-time.After(2 * time.Second):
			}
			ticks++
			if ticks%3 == 0 {
				h.sampleHeap()
			}
			gate, err := h.fetchGate()
			if err != nil {
				continue // drain may already have closed the listener
			}
			if gate.InFlight < 0 || gate.InFlight > int64(gate.MaxInFlight) {
				h.viol.add("metrics-consistent", fmt.Sprintf("gate in_flight %d outside [0,%d]", gate.InFlight, gate.MaxInFlight))
			}
			if gate.Waiting < 0 || gate.Waiting > int64(gate.MaxQueue) {
				h.viol.add("metrics-consistent", fmt.Sprintf("gate waiting %d outside [0,%d]", gate.Waiting, gate.MaxQueue))
			}
			if gate.Admitted < prev.Admitted || gate.Rejected < prev.Rejected || gate.TimedOut < prev.TimedOut {
				h.viol.add("metrics-consistent", fmt.Sprintf("gate counters went backwards: %+v then %+v", prev, gate))
			}
			prev = gate
			h.checkNoStuckJobs(60 * time.Second)
		}
	}()
}

func (h *harness) stopMonitor() {
	close(h.monitorStop)
	<-h.monitorDone
}

// checkNoStuckJobs scans every shard's job plane for a running job older
// than limit — with a request timeout of seconds, a job running for a
// minute is wedged, not slow.
func (h *harness) checkNoStuckJobs(limit time.Duration) {
	for k, srv := range h.servers {
		m := srv.Jobs()
		if m == nil {
			continue
		}
		for _, j := range m.List() {
			if j.State == jobs.StateRunning && j.RunMS > limit.Milliseconds() {
				h.viol.add("no-stuck-jobs", fmt.Sprintf("shard %d job %s (%s %s) running for %dms", k, j.ID, j.Kind, j.Site, j.RunMS))
			}
		}
	}
}

// --- metrics access ---

// fetchGate returns the fleet-summed gate snapshot from /metrics,
// whichever plane shape is serving.
func (h *harness) fetchGate() (serve.GateSnapshot, error) {
	raw, err := h.getJSON("/metrics")
	if err != nil {
		return serve.GateSnapshot{}, err
	}
	if h.router != nil {
		var m serve.FleetMetricsResponse
		if err := json.Unmarshal(raw, &m); err != nil {
			return serve.GateSnapshot{}, err
		}
		return m.Gate, nil
	}
	var m serve.MetricsResponse
	if err := json.Unmarshal(raw, &m); err != nil {
		return serve.GateSnapshot{}, err
	}
	return m.Gate, nil
}

func (h *harness) getJSON(path string) ([]byte, error) {
	r, err := h.client.Get(h.baseURL + path)
	if err != nil {
		return nil, err
	}
	defer r.Body.Close()
	if r.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET %s: %d", path, r.StatusCode)
	}
	return io.ReadAll(r.Body)
}

// --- waits between traffic stop and drain ---

// awaitHeals probes every stormed site with a drifted page until a newer
// wrapper version answers with records — proof auto-repair promoted a
// re-learned wrapper — or the deadline passes.
func (h *harness) awaitHeals(deadline time.Time) {
	for _, site := range h.sites {
		if !site.stormed.Load() {
			continue
		}
		probe, _ := json.Marshal(serve.ExtractRequest{Site: site.name,
			Page: &serve.PageInput{ID: "heal-probe", HTML: site.drifted[0]}})
		for {
			_, resp, ok := h.postExtract(probe)
			if ok && int64(resp.Version) > site.preVersion.Load() &&
				len(resp.Results) == 1 && len(resp.Results[0].Records) > 0 {
				site.healed.Store(true)
				h.logf("healed: %s now serves v%d with %d records on the drifted template",
					site.name, resp.Version, len(resp.Results[0].Records))
				break
			}
			if time.Now().After(deadline) {
				h.viol.add("drift-healed", fmt.Sprintf("%s never healed: still v%d (stormed at v%d) with no records on drifted pages",
					site.name, resp.Version, site.preVersion.Load()))
				break
			}
			time.Sleep(150 * time.Millisecond)
		}
	}
}

// awaitJobsIdle waits for every job plane to run dry (queued == 0,
// running == 0) so the final ledgers compare settled state, not a race.
func (h *harness) awaitJobsIdle(budget time.Duration) {
	deadline := time.Now().Add(budget)
	for {
		idle := true
		for _, srv := range h.servers {
			if m := srv.Jobs(); m != nil {
				met := m.Metrics()
				if met.Queued > 0 || met.Running > 0 {
					idle = false
				}
			}
		}
		if idle {
			return
		}
		if time.Now().After(deadline) {
			for k, srv := range h.servers {
				if m := srv.Jobs(); m != nil {
					met := m.Metrics()
					if met.Queued > 0 || met.Running > 0 {
						h.viol.add("no-stuck-jobs", fmt.Sprintf("shard %d jobs not idle %v after traffic stopped: %d queued, %d running",
							k, budget, met.Queued, met.Running))
					}
				}
			}
			return
		}
		time.Sleep(100 * time.Millisecond)
	}
}

// --- settled-state checks (traffic stopped, jobs idle, pre-drain) ---

// checkGateLedger compares the client's classification of every extract
// response against the gate's own counters. With traffic stopped the
// identity is exact: each Acquire resolved to exactly one of
// admitted/rejected/timed-out, and both sides counted the same events.
func (h *harness) checkGateLedger() {
	gate, err := h.fetchGate()
	if err != nil {
		h.viol.add("gate-ledger", fmt.Sprintf("cannot fetch final gate snapshot: %v", err))
		return
	}
	if gate.InFlight != 0 || gate.Waiting != 0 {
		h.viol.add("gate-ledger", fmt.Sprintf("traffic stopped but gate shows %d in flight, %d waiting", gate.InFlight, gate.Waiting))
	}
	if a, r, t := h.ledger.admitted.Load(), h.ledger.rejected.Load(), h.ledger.timedOut.Load(); gate.Admitted != a || gate.Rejected != r || gate.TimedOut != t {
		h.viol.add("gate-ledger", fmt.Sprintf(
			"server counted admitted=%d rejected=%d timed_out=%d; clients observed %d/%d/%d",
			gate.Admitted, gate.Rejected, gate.TimedOut, a, r, t))
	}
}

// checkMetricsConsistent asserts the fleet /metrics rollups agree with
// themselves exactly once traffic has settled: the fleet-wide merge, the
// per-shard sum and the per-site sum are three views of one ledger.
func (h *harness) checkMetricsConsistent() {
	if h.router == nil {
		return // single server exposes no rollups to cross-check
	}
	raw, err := h.getJSON("/metrics")
	if err != nil {
		h.viol.add("metrics-consistent", fmt.Sprintf("cannot fetch final metrics: %v", err))
		return
	}
	var m serve.FleetMetricsResponse
	if err := json.Unmarshal(raw, &m); err != nil {
		h.viol.add("metrics-consistent", fmt.Sprintf("final metrics undecodable: %v", err))
		return
	}
	type sums struct{ requests, pages, records, errors int64 }
	var shardSum, siteSum sums
	for _, s := range m.PerShard {
		shardSum.requests += s.Metrics.Requests
		shardSum.pages += s.Metrics.Pages
		shardSum.records += s.Metrics.Records
		shardSum.errors += s.Metrics.Errors
	}
	for _, s := range m.Sites {
		if s.Metrics == nil {
			continue
		}
		siteSum.requests += s.Metrics.Requests
		siteSum.pages += s.Metrics.Pages
		siteSum.records += s.Metrics.Records
		siteSum.errors += s.Metrics.Errors
	}
	fleet := sums{m.Fleet.Requests, m.Fleet.Pages, m.Fleet.Records, m.Fleet.Errors}
	if fleet != shardSum || fleet != siteSum {
		h.viol.add("metrics-consistent", fmt.Sprintf(
			"fleet=%+v but Σshards=%+v and Σsites=%+v", fleet, shardSum, siteSum))
	}
}

// checkJobsLedger verifies every shard's job accounting: per-kind
// submitted == done + failed + canceled, everything terminal, and no job
// canceled that the harness did not cancel itself.
func (h *harness) checkJobsLedger() {
	for k, srv := range h.servers {
		m := srv.Jobs()
		if m == nil {
			continue
		}
		met := m.Metrics()
		for kind, km := range met.Kinds {
			if km.Submitted != km.Done+km.Failed+km.Canceled {
				h.viol.add("jobs-ledger", fmt.Sprintf("shard %d kind %s: submitted %d != done %d + failed %d + canceled %d",
					k, kind, km.Submitted, km.Done, km.Failed, km.Canceled))
			}
		}
		for _, j := range m.List() {
			if !j.State.Terminal() {
				h.viol.add("jobs-ledger", fmt.Sprintf("shard %d job %s still %s after quiesce", k, j.ID, j.State))
			}
			if j.State == jobs.StateCanceled {
				if _, ours := h.selfCanceled.Load(j.ID); !ours {
					h.viol.add("jobs-ledger", fmt.Sprintf("shard %d job %s (%s %s) canceled by nobody", k, j.ID, j.Kind, j.Site))
				}
			}
		}
	}
}

// --- post-teardown checks ---

// checkGoroutineBaseline verifies the whole plane — HTTP server, job
// workers, maintainers, chaos clients — unwound back to the pre-boot
// goroutine census.
func (h *harness) checkGoroutineBaseline() {
	if err := h.baseline.Verify(10 * time.Second); err != nil {
		h.viol.add("goroutine-leak", err.Error())
	}
}

// checkHeapBounded fires only when every consecutive GC-settled sample
// grew AND the final heap is far beyond the first — the signature of a
// real leak rather than load-proportional churn.
func (h *harness) checkHeapBounded() {
	h.sampleHeap()
	h.heapMu.Lock()
	samples := h.heapSamples
	h.heapMu.Unlock()
	if len(samples) < 4 {
		return
	}
	monotonic := true
	for i := 1; i < len(samples); i++ {
		if samples[i] <= samples[i-1] {
			monotonic = false
			break
		}
	}
	first, last := samples[0], samples[len(samples)-1]
	if monotonic && last > first+first/2+32<<20 {
		h.viol.add("heap-bounded", fmt.Sprintf(
			"HeapAlloc grew monotonically across %d GC cycles: %d → %d bytes", len(samples), first, last))
	}
}

// checkStoreRecovery is the end-of-run corruption drill on the registry
// the fleet actually persisted all run: strict Load must accept the
// settled file, refuse a poisoned one naming the damage, and
// LoadRecovered must salvage every other site.
func (h *harness) checkStoreRecovery(rng *rand.Rand) {
	st, err := store.Load(h.storePath)
	if err != nil {
		h.viol.add("store-recovery", fmt.Sprintf("registry left corrupt after drain: %v", err))
		return
	}
	before := st.Len()
	site, version, err := chaos.CorruptStoreEntry(h.storePath, rng)
	if err != nil {
		h.viol.add("store-recovery", fmt.Sprintf("end-of-run corruption failed to write: %v", err))
		return
	}
	if _, err := store.Load(h.storePath); err == nil {
		h.viol.add("store-recovery", fmt.Sprintf("strict Load accepted a registry with %s v%d poisoned", site, version))
	} else if !strings.Contains(err.Error(), site) {
		h.viol.add("store-recovery", fmt.Sprintf("strict Load failed without naming site %s: %v", site, err))
	}
	rec, bad, err := store.LoadRecovered(h.storePath)
	if err != nil {
		h.viol.add("store-recovery", fmt.Sprintf("LoadRecovered refused the poisoned registry outright: %v", err))
		return
	}
	if len(bad) != 1 || bad[0].Site != site || bad[0].Version != version {
		h.viol.add("store-recovery", fmt.Sprintf("LoadRecovered reported %+v, want exactly %s v%d", bad, site, version))
	}
	if got := rec.Len(); got != before-1 {
		h.viol.add("store-recovery", fmt.Sprintf("LoadRecovered salvaged %d sites, want %d (all but %s)", got, before-1, site))
	}
}

// newestSegment returns the highest-numbered segment file in a log dir.
func newestSegment(dir string) (string, error) {
	names, err := filepath.Glob(filepath.Join(dir, "seg-*.log"))
	if err != nil {
		return "", err
	}
	if len(names) == 0 {
		return "", fmt.Errorf("no segments in %s", dir)
	}
	sort.Strings(names) // zero-padded indices sort lexically
	return names[len(names)-1], nil
}

// checkLogRecovery is the log backend's end-of-run kill-and-reopen drill.
// The process "died" at teardown (the backend was closed; from the log's
// point of view a close and a crash look the same modulo the torn tail);
// now the log must reopen to a consistent registry: (1) the mid-run torn
// frame — if compaction did not already delete its segment — is reported
// and truncated, (2) a second open finds a clean log and reproduces
// byte-for-byte the same registry, and (3) fresh tail garbage injected
// post-mortem recovers to that same registry again.
func (h *harness) checkLogRecovery(rng *rand.Rand) {
	open := func(stage string) (*logstore.Backend, *store.Store, []byte) {
		lb, err := logstore.Open(h.logDir, logstore.Options{})
		if err != nil {
			h.viol.add("store-recovery", fmt.Sprintf("%s: log failed to reopen: %v", stage, err))
			return nil, nil, nil
		}
		st, err := lb.Load()
		if err != nil {
			lb.Close()
			h.viol.add("store-recovery", fmt.Sprintf("%s: reopened log cannot reproduce a registry: %v", stage, err))
			return nil, nil, nil
		}
		enc, err := st.Encode()
		if err != nil {
			lb.Close()
			h.viol.add("store-recovery", fmt.Sprintf("%s: reopened registry does not encode: %v", stage, err))
			return nil, nil, nil
		}
		return lb, st, enc
	}

	// Drill 1: reopen the log the run actually wrote, torn frame and all.
	lb, st, first := open("first reopen")
	if lb == nil {
		return
	}
	if h.garbageSeg != "" {
		if _, statErr := os.Stat(h.garbageSeg); statErr == nil {
			if lb.Recovered() == nil {
				h.viol.add("store-recovery", fmt.Sprintf("mid-run torn frame in %s survived reopen unreported", h.garbageSeg))
			}
		}
		// A rotation after the fault compacted the poisoned segment away;
		// a clean reopen is then the correct outcome.
	} else if rec := lb.Recovered(); rec != nil {
		h.viol.add("store-recovery", fmt.Sprintf("uncorrupted log reopened with recovery: dropped %d bytes of %s (%s)", rec.Dropped, rec.Segment, rec.Reason))
	}
	// The seeded population — dealer sites and flip sites — predates every
	// fault, so no consistent prefix may lose any of them.
	for _, s := range h.sites {
		if _, ok := st.Active(s.name); !ok {
			h.viol.add("store-recovery", fmt.Sprintf("reopened log lost seeded site %s", s.name))
		}
	}
	for _, f := range h.flips {
		if act, ok := st.Active(f.name); !ok || (act.Version != 1 && act.Version != 2) {
			h.viol.add("store-recovery", fmt.Sprintf("reopened log serves %s at v%d/%v, want v1 or v2", f.name, act.Version, ok))
		}
	}
	lb.Close()

	// Drill 2: recovery is idempotent — the first reopen repaired the
	// file, so a second finds nothing to recover and the same registry.
	lb2, _, second := open("second reopen")
	if lb2 == nil {
		return
	}
	if rec := lb2.Recovered(); rec != nil {
		h.viol.add("store-recovery", fmt.Sprintf("second reopen found damage the first left behind: %s@%d", rec.Segment, rec.Offset))
	}
	if !bytes.Equal(first, second) {
		h.viol.add("store-recovery", "second reopen reproduced a different registry than the first")
	}
	lb2.Close()

	// Drill 3: fresh tail garbage — the crash-mid-append shape — must be
	// reported, truncated, and must not move the registry.
	seg, err := newestSegment(h.logDir)
	if err != nil {
		h.viol.add("store-recovery", fmt.Sprintf("post-mortem tear: %v", err))
		return
	}
	if err := chaos.AppendTornFrame(seg, rng); err != nil {
		h.viol.add("store-recovery", fmt.Sprintf("post-mortem tear failed to write: %v", err))
		return
	}
	lb3, _, third := open("post-tear reopen")
	if lb3 == nil {
		return
	}
	if lb3.Recovered() == nil {
		h.viol.add("store-recovery", fmt.Sprintf("injected tail tear in %s went unreported on reopen", filepath.Base(seg)))
	}
	if !bytes.Equal(first, third) {
		h.viol.add("store-recovery", "tail tear changed the recovered registry (truncation ate or invented records)")
	}
	lb3.Close()
}

// checkAuditChain verifies the ledger the run wrote, end to end from
// genesis: every hash link and every Merkle checkpoint must hold, and the
// run's lifecycle — at minimum the flipper's promotes and rollbacks —
// must actually be in it. Any tampering (see -break audit) must surface
// as a *TamperError naming the first damaged sequence number.
func (h *harness) checkAuditChain() {
	rep, err := audit.VerifyFile(h.auditPath)
	if err != nil {
		var te *audit.TamperError
		if errors.As(err, &te) {
			h.viol.add("audit-chain-intact", fmt.Sprintf("ledger tampered at seq %d (line %d): %s", te.Seq, te.Line, te.Reason))
		} else {
			h.viol.add("audit-chain-intact", fmt.Sprintf("ledger unverifiable: %v", err))
		}
		return
	}
	if rep.Records == 0 {
		h.viol.add("audit-chain-intact", "run produced no audit records (lifecycle events not reaching the ledger)")
		return
	}
	if rep.LastSeq != rep.Records {
		h.viol.add("audit-chain-intact", fmt.Sprintf("ledger seq %d != %d records: the chain skipped numbers", rep.LastSeq, rep.Records))
	}
	// The flipper promoted/rolled back every 700ms all run; a verified
	// ledger with no promote events means auditing is disconnected.
	hasPromote := false
	for _, rec := range tailRecords(h.auditPath, 4096) {
		if rec.Event == audit.EventPromote {
			hasPromote = true
			break
		}
	}
	if !hasPromote {
		h.viol.add("audit-chain-intact", "verified ledger holds no promote events despite the flipper running all run")
	}
	h.logf("audit ledger verified: %d records, %d events, %d checkpoints", rep.Records, rep.Events, rep.Checkpoints)
}

// tailRecords best-effort decodes up to n newest records of a ledger the
// chain walk already verified.
func tailRecords(path string, n int) []audit.Record {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil
	}
	lines := bytes.Split(bytes.TrimSuffix(data, []byte("\n")), []byte("\n"))
	if len(lines) > n {
		lines = lines[len(lines)-n:]
	}
	out := make([]audit.Record, 0, len(lines))
	for _, ln := range lines {
		var rec audit.Record
		if json.Unmarshal(ln, &rec) == nil {
			out = append(out, rec)
		}
	}
	return out
}
