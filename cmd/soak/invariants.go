package main

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"runtime"
	"strings"
	"sync"
	"time"

	"autowrap/internal/chaos"
	"autowrap/internal/jobs"
	"autowrap/internal/serve"
	"autowrap/internal/store"
)

// violations accumulates invariant failures instead of aborting on the
// first: one hostile run should report everything it broke. Duplicate
// (name, detail) pairs collapse, and per-name details are capped so a
// high-QPS failure mode cannot flood the report.
type violations struct {
	mu    sync.Mutex
	order []string
	byKey map[string][]string
}

const maxDetailsPerInvariant = 5

func (v *violations) add(name, detail string) {
	v.mu.Lock()
	defer v.mu.Unlock()
	if v.byKey == nil {
		v.byKey = make(map[string][]string)
	}
	if _, seen := v.byKey[name]; !seen {
		v.order = append(v.order, name)
	}
	ds := v.byKey[name]
	if len(ds) >= maxDetailsPerInvariant {
		return
	}
	for _, d := range ds {
		if d == detail {
			return
		}
	}
	v.byKey[name] = append(ds, detail)
}

// report prints every violation and says whether there were any.
func (v *violations) report(w io.Writer) bool {
	v.mu.Lock()
	defer v.mu.Unlock()
	for _, name := range v.order {
		for _, d := range v.byKey[name] {
			fmt.Fprintf(w, "INVARIANT VIOLATED: %s: %s\n", name, d)
		}
	}
	return len(v.order) > 0
}

// --- live monitors ---

// startHeapSampler records HeapAlloc after a forced GC every 5s. The
// heap-bounded invariant fires only on monotonic growth across every
// sample AND a final size far past the first — bounded sawtooth churn
// under load is healthy, a straight line up is a leak.
func (h *harness) startHeapSampler() {
	h.sampleHeap()
}

func (h *harness) sampleHeap() {
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	h.heapMu.Lock()
	h.heapSamples = append(h.heapSamples, ms.HeapAlloc)
	h.heapMu.Unlock()
}

// startMonitor polls the serving plane every 2s while the run is live:
// gate bounds and monotonicity, counter sanity against the client ledger,
// and the job planes for anything stuck in running past its deadline.
func (h *harness) startMonitor() {
	go func() {
		defer close(h.monitorDone)
		var prev serve.GateSnapshot
		ticks := 0
		for {
			select {
			case <-h.monitorStop:
				return
			case <-time.After(2 * time.Second):
			}
			ticks++
			if ticks%3 == 0 {
				h.sampleHeap()
			}
			gate, err := h.fetchGate()
			if err != nil {
				continue // drain may already have closed the listener
			}
			if gate.InFlight < 0 || gate.InFlight > int64(gate.MaxInFlight) {
				h.viol.add("metrics-consistent", fmt.Sprintf("gate in_flight %d outside [0,%d]", gate.InFlight, gate.MaxInFlight))
			}
			if gate.Waiting < 0 || gate.Waiting > int64(gate.MaxQueue) {
				h.viol.add("metrics-consistent", fmt.Sprintf("gate waiting %d outside [0,%d]", gate.Waiting, gate.MaxQueue))
			}
			if gate.Admitted < prev.Admitted || gate.Rejected < prev.Rejected || gate.TimedOut < prev.TimedOut {
				h.viol.add("metrics-consistent", fmt.Sprintf("gate counters went backwards: %+v then %+v", prev, gate))
			}
			prev = gate
			h.checkNoStuckJobs(60 * time.Second)
		}
	}()
}

func (h *harness) stopMonitor() {
	close(h.monitorStop)
	<-h.monitorDone
}

// checkNoStuckJobs scans every shard's job plane for a running job older
// than limit — with a request timeout of seconds, a job running for a
// minute is wedged, not slow.
func (h *harness) checkNoStuckJobs(limit time.Duration) {
	for k, srv := range h.servers {
		m := srv.Jobs()
		if m == nil {
			continue
		}
		for _, j := range m.List() {
			if j.State == jobs.StateRunning && j.RunMS > limit.Milliseconds() {
				h.viol.add("no-stuck-jobs", fmt.Sprintf("shard %d job %s (%s %s) running for %dms", k, j.ID, j.Kind, j.Site, j.RunMS))
			}
		}
	}
}

// --- metrics access ---

// fetchGate returns the fleet-summed gate snapshot from /metrics,
// whichever plane shape is serving.
func (h *harness) fetchGate() (serve.GateSnapshot, error) {
	raw, err := h.getJSON("/metrics")
	if err != nil {
		return serve.GateSnapshot{}, err
	}
	if h.router != nil {
		var m serve.FleetMetricsResponse
		if err := json.Unmarshal(raw, &m); err != nil {
			return serve.GateSnapshot{}, err
		}
		return m.Gate, nil
	}
	var m serve.MetricsResponse
	if err := json.Unmarshal(raw, &m); err != nil {
		return serve.GateSnapshot{}, err
	}
	return m.Gate, nil
}

func (h *harness) getJSON(path string) ([]byte, error) {
	r, err := h.client.Get(h.baseURL + path)
	if err != nil {
		return nil, err
	}
	defer r.Body.Close()
	if r.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET %s: %d", path, r.StatusCode)
	}
	return io.ReadAll(r.Body)
}

// --- waits between traffic stop and drain ---

// awaitHeals probes every stormed site with a drifted page until a newer
// wrapper version answers with records — proof auto-repair promoted a
// re-learned wrapper — or the deadline passes.
func (h *harness) awaitHeals(deadline time.Time) {
	for _, site := range h.sites {
		if !site.stormed.Load() {
			continue
		}
		probe, _ := json.Marshal(serve.ExtractRequest{Site: site.name,
			Page: &serve.PageInput{ID: "heal-probe", HTML: site.drifted[0]}})
		for {
			_, resp, ok := h.postExtract(probe)
			if ok && int64(resp.Version) > site.preVersion.Load() &&
				len(resp.Results) == 1 && len(resp.Results[0].Records) > 0 {
				site.healed.Store(true)
				h.logf("healed: %s now serves v%d with %d records on the drifted template",
					site.name, resp.Version, len(resp.Results[0].Records))
				break
			}
			if time.Now().After(deadline) {
				h.viol.add("drift-healed", fmt.Sprintf("%s never healed: still v%d (stormed at v%d) with no records on drifted pages",
					site.name, resp.Version, site.preVersion.Load()))
				break
			}
			time.Sleep(150 * time.Millisecond)
		}
	}
}

// awaitJobsIdle waits for every job plane to run dry (queued == 0,
// running == 0) so the final ledgers compare settled state, not a race.
func (h *harness) awaitJobsIdle(budget time.Duration) {
	deadline := time.Now().Add(budget)
	for {
		idle := true
		for _, srv := range h.servers {
			if m := srv.Jobs(); m != nil {
				met := m.Metrics()
				if met.Queued > 0 || met.Running > 0 {
					idle = false
				}
			}
		}
		if idle {
			return
		}
		if time.Now().After(deadline) {
			for k, srv := range h.servers {
				if m := srv.Jobs(); m != nil {
					met := m.Metrics()
					if met.Queued > 0 || met.Running > 0 {
						h.viol.add("no-stuck-jobs", fmt.Sprintf("shard %d jobs not idle %v after traffic stopped: %d queued, %d running",
							k, budget, met.Queued, met.Running))
					}
				}
			}
			return
		}
		time.Sleep(100 * time.Millisecond)
	}
}

// --- settled-state checks (traffic stopped, jobs idle, pre-drain) ---

// checkGateLedger compares the client's classification of every extract
// response against the gate's own counters. With traffic stopped the
// identity is exact: each Acquire resolved to exactly one of
// admitted/rejected/timed-out, and both sides counted the same events.
func (h *harness) checkGateLedger() {
	gate, err := h.fetchGate()
	if err != nil {
		h.viol.add("gate-ledger", fmt.Sprintf("cannot fetch final gate snapshot: %v", err))
		return
	}
	if gate.InFlight != 0 || gate.Waiting != 0 {
		h.viol.add("gate-ledger", fmt.Sprintf("traffic stopped but gate shows %d in flight, %d waiting", gate.InFlight, gate.Waiting))
	}
	if a, r, t := h.ledger.admitted.Load(), h.ledger.rejected.Load(), h.ledger.timedOut.Load(); gate.Admitted != a || gate.Rejected != r || gate.TimedOut != t {
		h.viol.add("gate-ledger", fmt.Sprintf(
			"server counted admitted=%d rejected=%d timed_out=%d; clients observed %d/%d/%d",
			gate.Admitted, gate.Rejected, gate.TimedOut, a, r, t))
	}
}

// checkMetricsConsistent asserts the fleet /metrics rollups agree with
// themselves exactly once traffic has settled: the fleet-wide merge, the
// per-shard sum and the per-site sum are three views of one ledger.
func (h *harness) checkMetricsConsistent() {
	if h.router == nil {
		return // single server exposes no rollups to cross-check
	}
	raw, err := h.getJSON("/metrics")
	if err != nil {
		h.viol.add("metrics-consistent", fmt.Sprintf("cannot fetch final metrics: %v", err))
		return
	}
	var m serve.FleetMetricsResponse
	if err := json.Unmarshal(raw, &m); err != nil {
		h.viol.add("metrics-consistent", fmt.Sprintf("final metrics undecodable: %v", err))
		return
	}
	type sums struct{ requests, pages, records, errors int64 }
	var shardSum, siteSum sums
	for _, s := range m.PerShard {
		shardSum.requests += s.Metrics.Requests
		shardSum.pages += s.Metrics.Pages
		shardSum.records += s.Metrics.Records
		shardSum.errors += s.Metrics.Errors
	}
	for _, s := range m.Sites {
		if s.Metrics == nil {
			continue
		}
		siteSum.requests += s.Metrics.Requests
		siteSum.pages += s.Metrics.Pages
		siteSum.records += s.Metrics.Records
		siteSum.errors += s.Metrics.Errors
	}
	fleet := sums{m.Fleet.Requests, m.Fleet.Pages, m.Fleet.Records, m.Fleet.Errors}
	if fleet != shardSum || fleet != siteSum {
		h.viol.add("metrics-consistent", fmt.Sprintf(
			"fleet=%+v but Σshards=%+v and Σsites=%+v", fleet, shardSum, siteSum))
	}
}

// checkJobsLedger verifies every shard's job accounting: per-kind
// submitted == done + failed + canceled, everything terminal, and no job
// canceled that the harness did not cancel itself.
func (h *harness) checkJobsLedger() {
	for k, srv := range h.servers {
		m := srv.Jobs()
		if m == nil {
			continue
		}
		met := m.Metrics()
		for kind, km := range met.Kinds {
			if km.Submitted != km.Done+km.Failed+km.Canceled {
				h.viol.add("jobs-ledger", fmt.Sprintf("shard %d kind %s: submitted %d != done %d + failed %d + canceled %d",
					k, kind, km.Submitted, km.Done, km.Failed, km.Canceled))
			}
		}
		for _, j := range m.List() {
			if !j.State.Terminal() {
				h.viol.add("jobs-ledger", fmt.Sprintf("shard %d job %s still %s after quiesce", k, j.ID, j.State))
			}
			if j.State == jobs.StateCanceled {
				if _, ours := h.selfCanceled.Load(j.ID); !ours {
					h.viol.add("jobs-ledger", fmt.Sprintf("shard %d job %s (%s %s) canceled by nobody", k, j.ID, j.Kind, j.Site))
				}
			}
		}
	}
}

// --- post-teardown checks ---

// checkGoroutineBaseline verifies the whole plane — HTTP server, job
// workers, maintainers, chaos clients — unwound back to the pre-boot
// goroutine census.
func (h *harness) checkGoroutineBaseline() {
	if err := h.baseline.Verify(10 * time.Second); err != nil {
		h.viol.add("goroutine-leak", err.Error())
	}
}

// checkHeapBounded fires only when every consecutive GC-settled sample
// grew AND the final heap is far beyond the first — the signature of a
// real leak rather than load-proportional churn.
func (h *harness) checkHeapBounded() {
	h.sampleHeap()
	h.heapMu.Lock()
	samples := h.heapSamples
	h.heapMu.Unlock()
	if len(samples) < 4 {
		return
	}
	monotonic := true
	for i := 1; i < len(samples); i++ {
		if samples[i] <= samples[i-1] {
			monotonic = false
			break
		}
	}
	first, last := samples[0], samples[len(samples)-1]
	if monotonic && last > first+first/2+32<<20 {
		h.viol.add("heap-bounded", fmt.Sprintf(
			"HeapAlloc grew monotonically across %d GC cycles: %d → %d bytes", len(samples), first, last))
	}
}

// checkStoreRecovery is the end-of-run corruption drill on the registry
// the fleet actually persisted all run: strict Load must accept the
// settled file, refuse a poisoned one naming the damage, and
// LoadRecovered must salvage every other site.
func (h *harness) checkStoreRecovery(rng *rand.Rand) {
	st, err := store.Load(h.storePath)
	if err != nil {
		h.viol.add("store-recovery", fmt.Sprintf("registry left corrupt after drain: %v", err))
		return
	}
	before := st.Len()
	site, version, err := chaos.CorruptStoreEntry(h.storePath, rng)
	if err != nil {
		h.viol.add("store-recovery", fmt.Sprintf("end-of-run corruption failed to write: %v", err))
		return
	}
	if _, err := store.Load(h.storePath); err == nil {
		h.viol.add("store-recovery", fmt.Sprintf("strict Load accepted a registry with %s v%d poisoned", site, version))
	} else if !strings.Contains(err.Error(), site) {
		h.viol.add("store-recovery", fmt.Sprintf("strict Load failed without naming site %s: %v", site, err))
	}
	rec, bad, err := store.LoadRecovered(h.storePath)
	if err != nil {
		h.viol.add("store-recovery", fmt.Sprintf("LoadRecovered refused the poisoned registry outright: %v", err))
		return
	}
	if len(bad) != 1 || bad[0].Site != site || bad[0].Version != version {
		h.viol.add("store-recovery", fmt.Sprintf("LoadRecovered reported %+v, want exactly %s v%d", bad, site, version))
	}
	if got := rec.Len(); got != before-1 {
		h.viol.add("store-recovery", fmt.Sprintf("LoadRecovered salvaged %d sites, want %d (all but %s)", got, before-1, site))
	}
}
