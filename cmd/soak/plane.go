package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"autowrap"
	"autowrap/internal/audit"
	"autowrap/internal/dataset"
	"autowrap/internal/drift"
	"autowrap/internal/jobs"
	"autowrap/internal/lr"
	"autowrap/internal/serve"
	"autowrap/internal/shard"
	"autowrap/internal/store"
	"autowrap/internal/store/filestore"
	"autowrap/internal/store/logstore"
	"autowrap/internal/testutil/leakcheck"
)

// Serving-plane sizing. Small on purpose: a gate of 8 slots and a job
// queue of 4 make overload and queue-full chaos reachable at smoke QPS.
const (
	gateInFlight   = 8
	gateQueue      = 8
	jobWorkers     = 1
	jobQueueDepth  = 4
	requestTimeout = 5 * time.Second
	drainBudget    = 15 * time.Second
	numFlips       = 2
	numLearnExtras = 2
	pagesPerSite   = 10
)

// soakSite is one learned dealer site plus its drifted twin: same record
// data, template mutated. A drift storm flips source, after which traffic
// serves the drifted pages and the learned wrapper collapses.
type soakSite struct {
	name    string
	clean   []string
	drifted []string
	// source selects the pages traffic serves: 0 clean, 1 drifted.
	source atomic.Int32
	// preVersion is the serving version captured when the storm hit;
	// healed means a later version answers with records on drifted pages.
	preVersion atomic.Int64
	stormed    atomic.Bool
	healed     atomic.Bool
}

func (s *soakSite) pages() []string {
	if s.source.Load() == 1 {
		return s.drifted
	}
	return s.clean
}

// flipSite is a hand-built two-family site: v1 (promoted) extracts the
// "alpha-" records, v2 (candidate) the "beta-" records. Promote/rollback
// flips alternate between them under live traffic; family purity says no
// response may ever mix the two or mislabel its version.
type flipSite struct {
	name  string
	pages []string
}

type harness struct {
	o       options
	log     *log.Logger
	viol    *violations
	ledger  clientLedger
	workDir string

	sites  []*soakSite
	extras []*soakSite // learned at runtime via /v1/learn
	flips  []*flipSite
	annot  autowrap.Annotator

	storePath string
	logDir    string // segment dir when -store-backend=log
	auditPath string
	backend   store.Backend
	aud       *audit.Ledger
	// garbageSeg is the segment a mid-run torn frame was injected into
	// ("" until that fault fires). Written by the chaos scheduler, read by
	// the post-teardown drill; runTraffic's WaitGroup orders the two.
	garbageSeg string

	baseURL   string
	addr      string
	ln        net.Listener
	hs        *http.Server
	router    *serve.ShardRouter // nil when shards == 1
	single    *serve.Server      // nil when shards > 1
	servers   []*serve.Server
	maints    []*serve.Maintainer
	client    *http.Client
	transport *http.Transport

	baseline leakcheck.Snapshot

	selfCanceled sync.Map // job id -> true: cancels the harness itself issued
	learnsLeft   atomic.Int64

	heapMu      sync.Mutex
	heapSamples []uint64

	monitorStop chan struct{}
	monitorDone chan struct{}
	serveErr    chan error
}

// newHarness generates corpora, learns the initial wrappers, records the
// goroutine baseline, and boots the serving plane.
func newHarness(o options) (*harness, error) {
	h := &harness{
		o:           o,
		log:         log.New(os.Stderr, "soak: ", log.LstdFlags),
		viol:        &violations{},
		monitorStop: make(chan struct{}),
		monitorDone: make(chan struct{}),
		serveErr:    make(chan error, 1),
	}
	h.learnsLeft.Store(6)
	if err := h.buildCorpora(); err != nil {
		return nil, err
	}
	st, err := h.learnStore()
	if err != nil {
		return nil, err
	}
	dir, err := os.MkdirTemp("", "soak-*")
	if err != nil {
		return nil, err
	}
	h.workDir = dir
	h.storePath = filepath.Join(dir, "wrappers.json")
	h.logDir = filepath.Join(dir, "wrappers.log")
	h.auditPath = filepath.Join(dir, "audit.jsonl")
	if err := st.Save(h.storePath); err != nil {
		return nil, err
	}

	// Baseline AFTER corpora + learning (their worker pools are ephemeral
	// and already gone) but BEFORE the plane boots: teardown must return
	// us exactly here.
	time.Sleep(100 * time.Millisecond)
	h.baseline = leakcheck.Take()

	if err := h.boot(); err != nil {
		return nil, err
	}
	return h, nil
}

// buildCorpora materializes the dealer sites and their drifted twins
// in-memory (same seed, Drift 2 ⇒ same records, mutated template), plus
// the hand-built flip sites.
func (h *harness) buildCorpora() error {
	opt := dataset.DealersOptions{
		NumSites: h.o.sites + numLearnExtras,
		NumPages: pagesPerSite,
		Seed:     h.o.seed + 1000,
	}
	ds, err := dataset.Dealers(opt)
	if err != nil {
		return err
	}
	opt.Drift = 2
	dsm, err := dataset.Dealers(opt)
	if err != nil {
		return err
	}
	h.annot = ds.Annotator
	for i, site := range ds.Sites {
		s := &soakSite{name: site.Name}
		for _, p := range site.Corpus.Pages {
			s.clean = append(s.clean, p.HTML)
		}
		for _, p := range dsm.Sites[i].Corpus.Pages {
			s.drifted = append(s.drifted, p.HTML)
		}
		if i < h.o.sites {
			h.sites = append(h.sites, s)
		} else {
			h.extras = append(h.extras, s)
		}
	}
	for k := 0; k < numFlips; k++ {
		f := &flipSite{name: fmt.Sprintf("flip-%d", k)}
		for i := 0; i < 6; i++ {
			f.pages = append(f.pages, flipPage(i))
		}
		h.flips = append(h.flips, f)
	}
	return nil
}

// flipPage renders one two-family page: three alpha records and three
// beta records, so either flip wrapper extracts exactly three.
func flipPage(i int) string {
	var b []byte
	b = append(b, "<html><body>"...)
	for r := 0; r < 3; r++ {
		b = append(b, fmt.Sprintf(`<div class="a">alpha-%d-%d</div>`, i, r)...)
	}
	for r := 0; r < 3; r++ {
		b = append(b, fmt.Sprintf(`<div class="b">beta-%d-%d</div>`, i, r)...)
	}
	b = append(b, "</body></html>"...)
	return string(b)
}

// learnStore learns v1 wrappers for every dealer site through the real
// batch engine and hand-stages the flip sites (v1 alpha promoted, v2 beta
// candidate).
func (h *harness) learnStore() (*store.Store, error) {
	var specs []autowrap.BatchSite
	for _, s := range h.sites {
		c := autowrap.ParsePages(s.clean)
		specs = append(specs, autowrap.BatchSite{
			Name:      s.name,
			Corpus:    c,
			Annotator: h.annot,
			NewInductor: func(c *autowrap.Corpus) (autowrap.Inductor, error) {
				return autowrap.NewXPathInductor(c), nil
			},
			Config: autowrap.NewLearnConfig(autowrap.GenericModels(c), autowrap.Options{}),
		})
	}
	batch, err := autowrap.LearnBatch(context.Background(), specs, autowrap.BatchOptions{})
	if err != nil {
		return nil, err
	}
	st := store.New()
	if n, err := st.PutBatch(batch); err != nil || n != len(h.sites) {
		return nil, fmt.Errorf("learned %d/%d sites: %v", n, len(h.sites), err)
	}
	for _, f := range h.flips {
		meta := store.Meta{Profile: &store.Profile{Pages: 4, MeanRecords: 3}}
		if _, err := st.Put(f.name, &lr.Compiled{Left: `<div class="a">`, Right: "</div>"}, meta); err != nil {
			return nil, err
		}
		if _, err := st.PutCandidate(f.name, &lr.Compiled{Left: `<div class="b">`, Right: "</div>"}, meta); err != nil {
			return nil, err
		}
	}
	return st, nil
}

// boot assembles the same serving stack wrapserved does — store,
// monitor, dispatcher, gate, repairer, job plane, maintainer — for one
// shard or a fleet, and mounts it on a real localhost listener. Running
// in-process keeps every internal ledger inspectable while traffic still
// crosses a genuine TCP + HTTP boundary.
func (h *harness) boot() error {
	newInductor := func(c *autowrap.Corpus) (autowrap.Inductor, error) {
		return autowrap.NewXPathInductor(c), nil
	}
	repairerFor := func(st *store.Store, mon *drift.Monitor) *drift.Repairer {
		return &drift.Repairer{
			Store: st,
			Spec: func(site string, c *autowrap.Corpus) (autowrap.BatchSite, error) {
				return autowrap.BatchSite{
					Annotator:   h.annot,
					NewInductor: newInductor,
					Config:      autowrap.NewLearnConfig(autowrap.GenericModels(c), autowrap.Options{}),
				}, nil
			},
			Monitor: mon,
		}
	}
	// The durability plane under test: the whole fleet shares one backend
	// and one audit ledger, exactly as wrapserved wires them.
	switch h.o.storeBackend {
	case "file":
		fb, err := filestore.Open(h.storePath)
		if err != nil {
			return err
		}
		h.backend = fb
	case "log":
		lb, err := logstore.Open(h.logDir, logstore.Options{})
		if err != nil {
			return err
		}
		seed, err := store.Load(h.storePath)
		if err != nil {
			return err
		}
		if err := lb.SeedFrom(seed); err != nil {
			return err
		}
		h.backend = lb
	}
	aud, err := audit.Open(h.auditPath, audit.Options{})
	if err != nil {
		return err
	}
	h.aud = aud

	buildShard := func(k int, st *store.Store) (*serve.Server, error) {
		mon := drift.NewMonitor(drift.Policy{Window: 8, MinPages: 4})
		dispatcher := serve.NewDispatcher(st, serve.Options{Monitor: mon, RecentPages: 64})
		return serve.NewServer(serve.ServerConfig{
			Dispatcher: dispatcher,
			Gate: serve.NewGate(serve.GateOptions{
				MaxInFlight: gateInFlight, MaxQueue: gateQueue, RetryAfter: 50 * time.Millisecond,
			}),
			RequestTimeout: requestTimeout,
			MaxPages:       64,
			Repairer:       repairerFor(st, mon),
			Jobs: jobs.New(jobs.Options{
				Workers: jobWorkers, QueueDepth: jobQueueDepth,
				IDPrefix: fmt.Sprintf("s%d-", k),
			}),
			Backend: h.backend,
			Shard:   k,
			Audit:   h.aud,
			Log:     h.log,
		})
	}

	if h.o.shards == 1 {
		st, err := h.backend.Load()
		if err != nil {
			return err
		}
		srv, err := buildShard(0, st)
		if err != nil {
			return err
		}
		h.single = srv
		h.servers = []*serve.Server{srv}
	} else {
		ring := shard.NewRing(h.o.shards, h.o.vnodes)
		router, err := serve.NewShardRouter(ring, func(k int) (*serve.Server, error) {
			st, err := h.backend.LoadPartition(ring, k)
			if err != nil {
				return nil, err
			}
			return buildShard(k, st)
		})
		if err != nil {
			return err
		}
		h.router = router
		for k := 0; k < h.o.shards; k++ {
			h.servers = append(h.servers, router.Shard(k))
		}
	}

	if h.o.breakMode != "heal" {
		for _, srv := range h.servers {
			m, err := serve.NewMaintainer(srv, serve.MaintainerOptions{
				Interval: 250 * time.Millisecond,
				MinGap:   1500 * time.Millisecond,
				MinPages: 4,
				Log:      h.log,
			})
			if err != nil {
				return err
			}
			m.Start()
			h.maints = append(h.maints, m)
		}
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	h.ln = ln
	h.addr = ln.Addr().String()
	h.baseURL = "http://" + h.addr
	var handler http.Handler
	if h.router != nil {
		handler = h.router.Handler()
	} else {
		handler = h.single.Handler()
	}
	h.hs = &http.Server{Handler: handler}
	go func() {
		if err := h.hs.Serve(ln); !errors.Is(err, http.ErrServerClosed) {
			h.serveErr <- err
			return
		}
		h.serveErr <- nil
	}()

	h.transport = &http.Transport{MaxIdleConns: 64, MaxIdleConnsPerHost: 64}
	h.client = &http.Client{Transport: h.transport, Timeout: 60 * time.Second}
	return nil
}

func (h *harness) setDraining(v bool) {
	if h.router != nil {
		h.router.SetDraining(v)
		return
	}
	h.single.SetDraining(v)
}

func (h *harness) stopMaintainers() {
	for _, m := range h.maints {
		m.Stop()
	}
	h.maints = nil
}

// drainAndTeardown runs the production shutdown ordering — readiness
// flip, HTTP shutdown (in-flight requests finish), job planes closed —
// under a watchdog: a drain that cannot finish inside its budget is
// itself an invariant violation, and the harness moves on to the
// post-mortem checks instead of hanging on a stuck job forever.
func (h *harness) drainAndTeardown() {
	h.setDraining(true)
	done := make(chan struct{})
	go func() {
		defer close(done)
		ctx, cancel := context.WithTimeout(context.Background(), drainBudget)
		defer cancel()
		if err := h.hs.Shutdown(ctx); err != nil {
			h.viol.add("clean-drain", fmt.Sprintf("http shutdown: %v", err))
		}
		if h.router != nil {
			if err := h.router.Drain(ctx); err != nil {
				h.viol.add("clean-drain", fmt.Sprintf("fleet job drain: %v", err))
			}
		} else if m := h.single.Jobs(); m != nil {
			if err := m.Drain(ctx); err != nil {
				h.viol.add("clean-drain", fmt.Sprintf("job drain: %v", err))
			}
		}
		for _, srv := range h.servers {
			srv.Close()
		}
		if err := h.backend.Close(); err != nil {
			h.viol.add("clean-drain", fmt.Sprintf("store backend close: %v", err))
		}
		if err := h.aud.Close(); err != nil {
			h.viol.add("clean-drain", fmt.Sprintf("audit ledger close: %v", err))
		}
	}()
	select {
	case <-done:
		if err := <-h.serveErr; err != nil {
			h.viol.add("clean-drain", fmt.Sprintf("http server: %v", err))
		}
	case <-time.After(drainBudget + 10*time.Second):
		h.viol.add("clean-drain", fmt.Sprintf("drain did not complete within %v", drainBudget+10*time.Second))
		h.viol.add("no-stuck-jobs", "drain hung: a job is ignoring cancellation")
	}
	h.transport.CloseIdleConnections()
}
