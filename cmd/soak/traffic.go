package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"autowrap/internal/chaos"
	"autowrap/internal/serve"
	"autowrap/internal/store"
)

// clientLedger mirrors the gate's admission ledger from the outside:
// every /v1/extract response is classified into exactly one bucket (or
// preGate, for requests the gate never saw). At the end of the run the
// three gate-facing buckets must equal the server's counters exactly —
// that equality is the gate-ledger invariant.
type clientLedger struct {
	admitted atomic.Int64
	rejected atomic.Int64
	timedOut atomic.Int64
	preGate  atomic.Int64
}

func (l *clientLedger) total() int64 {
	return l.admitted.Load() + l.rejected.Load() + l.timedOut.Load() + l.preGate.Load()
}

// classifyExtract buckets one extract response the way the gate counted
// it. Validation failures (400/405/413) never reached the gate; 429 is a
// rejection; a 504/499 whose error says "while queued" expired waiting
// for a slot (timed out); everything else — 200, unknown site 404, no
// active version 409, mid-extract deadline 504/499 — was admitted first.
func (l *clientLedger) classifyExtract(status int, errStr string) {
	switch {
	case status == http.StatusBadRequest,
		status == http.StatusMethodNotAllowed,
		status == http.StatusRequestEntityTooLarge:
		l.preGate.Add(1)
	case status == http.StatusTooManyRequests:
		l.rejected.Add(1)
	case (status == http.StatusGatewayTimeout || status == 499) &&
		strings.Contains(errStr, "while queued"):
		l.timedOut.Add(1)
	default:
		l.admitted.Add(1)
	}
}

// extractAllowed is the closed set of statuses a hostile-but-sane client
// may see from /v1/extract. Anything else — a 500, a 502, a torn
// connection — means a handler blew up, which is the no-panic invariant.
func extractAllowed(status int) bool {
	switch status {
	case http.StatusOK, http.StatusBadRequest, http.StatusNotFound,
		http.StatusConflict, http.StatusRequestEntityTooLarge,
		http.StatusMethodNotAllowed, http.StatusTooManyRequests,
		http.StatusGatewayTimeout, 499:
		return true
	}
	return false
}

// postExtract sends one body to /v1/extract, classifies it into the
// ledger, and returns the decoded response when it was a 200.
func (h *harness) postExtract(body []byte) (status int, resp serve.ExtractResponse, ok bool) {
	r, err := h.client.Post(h.baseURL+"/v1/extract", "application/json", bytes.NewReader(body))
	if err != nil {
		h.viol.add("no-panic", fmt.Sprintf("extract transport error: %v", err))
		return 0, resp, false
	}
	raw, err := io.ReadAll(r.Body)
	r.Body.Close()
	if err != nil {
		h.viol.add("no-panic", fmt.Sprintf("extract response torn mid-body (status %d): %v", r.StatusCode, err))
		return r.StatusCode, resp, false
	}
	_ = json.Unmarshal(raw, &resp) // best-effort: error bodies share the Error field
	h.ledger.classifyExtract(r.StatusCode, resp.Error)
	if !extractAllowed(r.StatusCode) {
		h.viol.add("no-panic", fmt.Sprintf("extract answered %d: %.200s", r.StatusCode, raw))
		return r.StatusCode, resp, false
	}
	return r.StatusCode, resp, r.StatusCode == http.StatusOK
}

func (h *harness) postJSON(path string, v any) (int, []byte) {
	body, err := json.Marshal(v)
	if err != nil {
		h.viol.add("no-panic", fmt.Sprintf("marshal %T: %v", v, err))
		return 0, nil
	}
	r, err := h.client.Post(h.baseURL+path, "application/json", bytes.NewReader(body))
	if err != nil {
		h.viol.add("no-panic", fmt.Sprintf("%s transport error: %v", path, err))
		return 0, nil
	}
	raw, _ := io.ReadAll(r.Body)
	r.Body.Close()
	return r.StatusCode, raw
}

// runTraffic drives the whole mixed-load window: paced workers, overload
// bursts, promote/rollback flips, slow and disconnecting clients, job
// chaos, drift storms and the mid-run store corruption. It returns once
// every generator has stopped and in-flight requests have been classified.
func (h *harness) runTraffic(dur time.Duration) {
	stop := make(chan struct{})
	var wg sync.WaitGroup

	// Pacer: one token per request slot, so aggregate QPS tracks -qps
	// regardless of worker count.
	tokens := make(chan struct{}, 4*h.o.qps)
	wg.Add(1)
	go func() {
		defer wg.Done()
		tick := time.NewTicker(time.Second / time.Duration(h.o.qps))
		defer tick.Stop()
		for {
			select {
			case <-stop:
				return
			case <-tick.C:
				select {
				case tokens <- struct{}{}:
				default: // workers saturated; shed the token, not the run
				}
			}
		}
	}()

	workers := 24
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go h.worker(w, stop, tokens, &wg)
	}
	wg.Add(4)
	go h.overloadBursts(stop, &wg)
	go h.flipper(stop, &wg)
	go h.rudeClients(stop, &wg)
	go h.jobBursts(stop, &wg)

	wg.Add(1)
	go h.chaosSchedule(dur, stop, &wg)

	time.Sleep(dur)
	close(stop)
	wg.Wait()
}

// worker is one paced traffic generator with its own deterministic rng
// and malformed-body stream.
func (h *harness) worker(id int, stop <-chan struct{}, tokens <-chan struct{}, wg *sync.WaitGroup) {
	defer wg.Done()
	rng := rand.New(rand.NewSource(h.o.seed*1_000_003 + int64(id)))
	bodies := chaos.NewBodies(h.o.seed*101 + int64(id))
	for {
		select {
		case <-stop:
			return
		case <-tokens:
		}
		switch p := rng.Float64(); {
		case p < 0.60:
			h.validExtract(rng)
		case p < 0.75:
			h.flipExtract(rng)
		case p < 0.87:
			h.postExtract(bodies.Malformed())
		case p < 0.90:
			h.submitRepair(rng)
		case p < 0.92:
			h.submitLearn(rng)
		default:
			h.readEndpoints(rng)
		}
	}
}

func (h *harness) validExtract(rng *rand.Rand) {
	site := h.sites[rng.Intn(len(h.sites))]
	pages := site.pages()
	n := 1 + rng.Intn(3)
	start := rng.Intn(len(pages))
	req := serve.ExtractRequest{Site: site.name}
	for i := 0; i < n; i++ {
		req.Pages = append(req.Pages, serve.PageInput{
			ID: fmt.Sprintf("p%d", start+i), HTML: pages[(start+i)%len(pages)],
		})
	}
	if rng.Float64() < 0.10 {
		req.TimeoutMS = 5 // deadline chaos: may expire queued or mid-extract
	}
	body, _ := json.Marshal(req)
	h.postExtract(body)
}

// flipExtract drives a flip site and asserts family purity: a 200
// response must carry records from exactly one wrapper family, and that
// family must match the version the response claims it was served by.
func (h *harness) flipExtract(rng *rand.Rand) {
	f := h.flips[rng.Intn(len(h.flips))]
	req := serve.ExtractRequest{Site: f.name}
	for i := 0; i < 2; i++ {
		p := rng.Intn(len(f.pages))
		req.Pages = append(req.Pages, serve.PageInput{ID: fmt.Sprintf("f%d", p), HTML: f.pages[p]})
	}
	body, _ := json.Marshal(req)
	_, resp, ok := h.postExtract(body)
	if !ok {
		return
	}
	want := ""
	switch resp.Version {
	case 1:
		want = "alpha-"
	case 2:
		want = "beta-"
	default:
		h.viol.add("family-purity", fmt.Sprintf("%s served version %d, store has only v1/v2", f.name, resp.Version))
		return
	}
	for _, pr := range resp.Results {
		if len(pr.Records) != 3 {
			h.viol.add("family-purity", fmt.Sprintf("%s v%d page %s: %d records, want 3", f.name, resp.Version, pr.ID, len(pr.Records)))
		}
		for _, rec := range pr.Records {
			if !strings.HasPrefix(rec, want) {
				h.viol.add("family-purity", fmt.Sprintf("%s answered version %d with record %q", f.name, resp.Version, rec))
			}
		}
	}
}

// submitRepair enqueues a repair of a currently-clean site (drifted sites
// are the auto-repair loop's to heal) and sometimes cancels it right away
// — the canceled-job fault. 429 queue-full answers are expected chaos.
func (h *harness) submitRepair(rng *rand.Rand) {
	site := h.sites[rng.Intn(len(h.sites))]
	if site.source.Load() == 1 {
		return
	}
	start := rng.Intn(len(site.clean))
	var pages []string
	for i := 0; i < 4; i++ {
		pages = append(pages, site.clean[(start+i)%len(site.clean)])
	}
	status, raw := h.postJSON("/v1/repair", serve.RepairRequest{Site: site.name, Pages: pages})
	switch status {
	case http.StatusAccepted:
		var acc serve.JobAccepted
		if err := json.Unmarshal(raw, &acc); err != nil || acc.JobID == "" {
			h.viol.add("no-panic", fmt.Sprintf("202 repair with undecodable body: %.120s", raw))
			return
		}
		if rng.Float64() < 0.25 {
			h.selfCanceled.Store(acc.JobID, true)
			if st, body := h.postJSON("/v1/jobs/"+acc.JobID+"/cancel", struct{}{}); st != http.StatusOK && st != http.StatusConflict {
				h.viol.add("no-panic", fmt.Sprintf("cancel %s answered %d: %.120s", acc.JobID, st, body))
			}
		}
	case http.StatusTooManyRequests: // queue full: the fault we wanted
	default:
		h.viol.add("no-panic", fmt.Sprintf("repair submit answered %d: %.120s", status, raw))
	}
}

// submitLearn teaches the fleet a brand-new site over the wire, a bounded
// number of times per run (every learn adds a store version and a
// persist; unbounded it would be a write storm, not chaos).
func (h *harness) submitLearn(rng *rand.Rand) {
	if h.learnsLeft.Add(-1) < 0 {
		return
	}
	site := h.extras[rng.Intn(len(h.extras))]
	status, raw := h.postJSON("/v1/learn", serve.LearnRequest{Site: site.name, Pages: site.clean})
	if status != http.StatusAccepted && status != http.StatusTooManyRequests {
		h.viol.add("no-panic", fmt.Sprintf("learn submit answered %d: %.120s", status, raw))
	}
}

func (h *harness) readEndpoints(rng *rand.Rand) {
	paths := []string{"/healthz", "/metrics", "/v1/sites", "/v1/jobs"}
	path := paths[rng.Intn(len(paths))]
	r, err := h.client.Get(h.baseURL + path)
	if err != nil {
		h.viol.add("no-panic", fmt.Sprintf("GET %s transport error: %v", path, err))
		return
	}
	io.Copy(io.Discard, r.Body)
	r.Body.Close()
	if r.StatusCode != http.StatusOK {
		h.viol.add("no-panic", fmt.Sprintf("GET %s answered %d", path, r.StatusCode))
	}
}

// overloadBursts slams the gate every 5s: a wave of heavy batches with a
// 10ms budget, sized past in-flight + queue, so admissions, queue-full
// rejections and while-queued expiries all happen in one burst.
func (h *harness) overloadBursts(stop <-chan struct{}, wg *sync.WaitGroup) {
	defer wg.Done()
	site := h.sites[0]
	for {
		select {
		case <-stop:
			return
		case <-time.After(5 * time.Second):
		}
		req := serve.ExtractRequest{Site: site.name, TimeoutMS: 10}
		pages := site.pages()
		for i := 0; i < 16; i++ {
			req.Pages = append(req.Pages, serve.PageInput{ID: fmt.Sprintf("b%d", i), HTML: pages[i%len(pages)]})
		}
		body, _ := json.Marshal(req)
		var burst sync.WaitGroup
		for i := 0; i < 3*(gateInFlight+gateQueue); i++ {
			burst.Add(1)
			go func() {
				defer burst.Done()
				h.postExtract(body)
			}()
		}
		burst.Wait()
	}
}

// flipper alternates promote(v2)/rollback on every flip site — the
// hot-swap flips family-purity checks race against. Each mutation also
// persists the registry, which is what heals mid-run store corruption.
func (h *harness) flipper(stop <-chan struct{}, wg *sync.WaitGroup) {
	defer wg.Done()
	promote := true
	for {
		select {
		case <-stop:
			return
		case <-time.After(700 * time.Millisecond):
		}
		for _, f := range h.flips {
			var status int
			var raw []byte
			if promote {
				status, raw = h.postJSON("/v1/promote", serve.AdminRequest{Site: f.name, Version: 2})
			} else {
				status, raw = h.postJSON("/v1/rollback", serve.AdminRequest{Site: f.name})
			}
			if status != http.StatusOK {
				h.viol.add("no-panic", fmt.Sprintf("flip %s of %s answered %d: %.120s", verb(promote), f.name, status, raw))
			}
		}
		promote = !promote
	}
}

func verb(promote bool) string {
	if promote {
		return "promote"
	}
	return "rollback"
}

// rudeClients runs the transport-level chaos: slow-loris writers that
// stall mid-body and clients that vanish before reading their response.
// Both use bodies that fail before the admission gate, so they abuse the
// HTTP plane without ever touching the gate ledger.
func (h *harness) rudeClients(stop <-chan struct{}, wg *sync.WaitGroup) {
	defer wg.Done()
	var inner sync.WaitGroup
	defer inner.Wait()
	for {
		select {
		case <-stop:
			return
		case <-time.After(2 * time.Second):
		}
		inner.Add(2)
		go func() {
			defer inner.Done()
			chaos.SlowClient(h.addr, []byte(`{"site":"slow","pages":[{"html":"<p>half</p>"}]}`), 300*time.Millisecond)
		}()
		go func() {
			defer inner.Done()
			chaos.Disconnector(h.addr, []byte(`{"site":"gone"}`))
		}()
	}
}

// jobBursts overfills the job queue every 7s: more submissions at once
// than queue depth, so ErrQueueFull fires even when the steady drip of
// worker repairs would not fill it.
func (h *harness) jobBursts(stop <-chan struct{}, wg *sync.WaitGroup) {
	defer wg.Done()
	rng := rand.New(rand.NewSource(h.o.seed * 31))
	for {
		select {
		case <-stop:
			return
		case <-time.After(7 * time.Second):
		}
		var burst sync.WaitGroup
		for i := 0; i < 2*jobQueueDepth; i++ {
			burst.Add(1)
			go func() {
				defer burst.Done()
				h.submitRepair(rand.New(rand.NewSource(rng.Int63())))
			}()
		}
		burst.Wait()
	}
}

// chaosSchedule fires the seed-determined faults at fixed fractions of
// the traffic window: three drift storms (25%, 45%, 65%) and one store
// corruption (50%). The optional stuck-job sabotage rides here too.
func (h *harness) chaosSchedule(dur time.Duration, stop <-chan struct{}, wg *sync.WaitGroup) {
	defer wg.Done()
	rng := rand.New(rand.NewSource(h.o.seed * 17))
	type event struct {
		at  time.Duration
		run func()
	}
	var events []event
	for i, frac := range []float64{0.25, 0.45, 0.65} {
		site := h.sites[i%len(h.sites)]
		events = append(events, event{time.Duration(float64(dur) * frac), func() { h.driftStorm(site) }})
	}
	events = append(events, event{time.Duration(float64(dur) * 0.50), func() { h.storeChaos(rng) }})
	if h.o.breakMode == "stuck" {
		events = append(events, event{time.Duration(float64(dur) * 0.30), h.sabotageStuckJob})
	}
	start := time.Now()
	for _, ev := range events {
		select {
		case <-stop:
			return
		case <-time.After(time.Until(start.Add(ev.at))):
			ev.run()
		}
	}
}

// driftStorm rotates one site's template out from under its wrapper:
// capture the serving version, then swap every future page to the
// drifted twin. From here only the auto-repair loop can make the site
// answer with records again — that is the drift-healed invariant.
func (h *harness) driftStorm(site *soakSite) {
	if site.stormed.Load() {
		return
	}
	probe, _ := json.Marshal(serve.ExtractRequest{Site: site.name,
		Page: &serve.PageInput{ID: "storm-probe", HTML: site.clean[0]}})
	_, resp, ok := h.postExtract(probe)
	if !ok {
		h.viol.add("drift-healed", fmt.Sprintf("%s: pre-storm probe failed; cannot capture baseline version", site.name))
		return
	}
	site.preVersion.Store(int64(resp.Version))
	site.stormed.Store(true)
	site.source.Store(1)
	h.logf("drift storm: %s (serving v%d) now serves its mutated template", site.name, resp.Version)
}

// storeChaos is the mid-run durability fault, shaped to the backend
// under test: registry-entry poisoning for the file backend, a torn
// frame in the live segment for the log backend.
func (h *harness) storeChaos(rng *rand.Rand) {
	if h.o.storeBackend == "log" {
		h.corruptLogSegment(rng)
		return
	}
	h.corruptStore(rng)
}

// corruptLogSegment appends a torn frame to the log's active segment
// while the fleet keeps appending live records after it — the on-disk
// shape a crash mid-append leaves behind. Serving must not notice (the
// registry is in memory; the log is only read at open), and the
// end-of-run kill-and-reopen drill must recover to a consistent prefix.
func (h *harness) corruptLogSegment(rng *rand.Rand) {
	seg, err := newestSegment(h.logDir)
	if err != nil {
		h.viol.add("store-recovery", fmt.Sprintf("mid-run log corruption: %v", err))
		return
	}
	if err := chaos.AppendTornFrame(seg, rng); err != nil {
		h.viol.add("store-recovery", fmt.Sprintf("mid-run log corruption failed to write: %v", err))
		return
	}
	h.garbageSeg = seg
	h.logf("store chaos: tore a frame into %s", seg)
}

// corruptStore poisons one registry entry on disk mid-run, then watches
// for the serving plane's next persist to overwrite it with clean state —
// the fleet must never re-read (and trust) the damaged file.
func (h *harness) corruptStore(rng *rand.Rand) {
	site, version, err := chaos.CorruptStoreEntry(h.storePath, rng)
	if err != nil {
		h.viol.add("store-recovery", fmt.Sprintf("mid-run corruption failed to write: %v", err))
		return
	}
	h.logf("store chaos: poisoned %s v%d in %s", site, version, h.storePath)
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if _, err := store.Load(h.storePath); err == nil {
			return // a flip/job persist overwrote the damage
		}
		time.Sleep(200 * time.Millisecond)
	}
	h.viol.add("store-recovery", fmt.Sprintf("registry still corrupt (%s v%d) 10s after poisoning: no persist overwrote it", site, version))
}

// sabotageStuckJob (-break stuck) wedges a job that ignores its context:
// quiesce can never go idle and drain hangs, which no-stuck-jobs and
// clean-drain must both catch.
func (h *harness) sabotageStuckJob() {
	h.servers[0].Jobs().Submit("repair", "sabotage", func(ctx context.Context, progress func(string)) (any, error) {
		select {} // ignore ctx forever
	})
}

// rawUnrecordedExtract (-break ledger) admits one valid request the
// client ledger never counts, forcing a gate-ledger mismatch of one.
func (h *harness) rawUnrecordedExtract() {
	body, _ := json.Marshal(serve.ExtractRequest{Site: h.sites[0].name,
		Page: &serve.PageInput{HTML: h.sites[0].clean[0]}})
	r, err := h.client.Post(h.baseURL+"/v1/extract", "application/json", bytes.NewReader(body))
	if err == nil {
		io.Copy(io.Discard, r.Body)
		r.Body.Close()
	}
}
