// Command wrapserve exercises the learn/serve split end to end: learning
// produces a portable compiled wrapper, the versioned store persists it,
// and the streaming extraction runtime serves it to pages the learner
// never saw — across process restarts.
//
// Usage:
//
//	wrapserve -demo                      # full cycle on a generated site
//	wrapserve -demo -kind lr -workers 8  # same, LR wrapper language
//
//	wrapserve -learn -store w.json -site shop -dict names.txt p1.html p2.html ...
//	wrapserve -extract -store w.json -site shop fresh1.html fresh2.html ...
//
// -learn runs noise-tolerant induction over the given pages, compiles the
// winning wrapper and appends it as a new version of the site's entry in
// the store (creating the store file if needed). -extract reloads the
// store in a fresh process and streams the given pages through the
// extraction runtime, printing one tab-separated line per record and a
// throughput summary. -demo performs learn, save, reload and extract in
// one run, splitting a generated DEALERS-style site into training and
// held-out pages.
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"autowrap"
	"autowrap/internal/dataset"
	"autowrap/internal/experiments"
	"autowrap/internal/store"
)

func main() {
	var (
		demo     = flag.Bool("demo", false, "run the full learn -> store -> restart -> extract cycle on a generated site")
		learn    = flag.Bool("learn", false, "learn a wrapper from HTML files and store it")
		extr     = flag.Bool("extract", false, "load the store and extract from HTML files")
		storeP   = flag.String("store", "wrappers.json", "wrapper store path")
		site     = flag.String("site", "", "site name in the store (required for -learn/-extract)")
		dictPath = flag.String("dict", "", "dictionary file for -learn (one entry per line)")
		kind     = flag.String("kind", "xpath", "wrapper language: xpath | lr")
		workers  = flag.Int("workers", 0, "extraction workers (0 = GOMAXPROCS)")
		pages    = flag.Int("pages", 16, "pages of the generated demo site")
	)
	flag.Parse()
	var err error
	switch {
	case *demo:
		err = runDemo(*storeP, *kind, *workers, *pages)
	case *learn:
		err = runLearn(*storeP, *site, *dictPath, *kind, flag.Args())
	case *extr:
		err = runExtract(*storeP, *site, *workers, flag.Args())
	default:
		flag.Usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "wrapserve:", err)
		os.Exit(1)
	}
}

// newInductor is the shared kind-string dispatch (xpath | lr).
func newInductor(kind string, c *autowrap.Corpus) (autowrap.Inductor, error) {
	return experiments.NewInductor(kind, c)
}

// runDemo is the zero-setup proof of the whole lifecycle.
func runDemo(storePath, kind string, workers, numPages int) error {
	if numPages < 4 {
		return fmt.Errorf("-pages must be >= 4 (need held-out pages)")
	}
	ds, err := dataset.Dealers(dataset.DealersOptions{NumSites: 2, NumPages: numPages})
	if err != nil {
		return err
	}
	siteData := ds.Sites[0]
	var htmls []string
	for _, p := range siteData.Corpus.Pages {
		htmls = append(htmls, p.HTML)
	}
	split := numPages / 2
	fmt.Printf("site %s: %d pages; learning on %d, serving %d held-out\n",
		siteData.Name, numPages, split, numPages-split)

	// Learn on the training half only.
	train := autowrap.ParsePages(htmls[:split])
	labels := ds.Annotator.Annotate(train)
	ind, err := newInductor(kind, train)
	if err != nil {
		return err
	}
	res, err := autowrap.Learn(ind, labels, autowrap.GenericModels(train), autowrap.Options{})
	if err != nil {
		return err
	}
	if res.Best == nil {
		return fmt.Errorf("no wrapper learned (labels: %d)", labels.Count())
	}
	fmt.Printf("learned %s wrapper: %s\n", kind, res.Best.Wrapper.Rule())

	// Compile and persist.
	compiled, err := autowrap.Compile(res.Best.Wrapper)
	if err != nil {
		return err
	}
	// Append to an existing store rather than clobbering it — the demo may
	// point at a registry that -learn has already populated.
	st, err := loadOrNewStore(storePath)
	if err != nil {
		return err
	}
	entry, err := st.Put(siteData.Name, compiled, autowrap.StoredMeta{
		Score: res.Best.Score.Total, Labels: labels.Count(),
	})
	if err != nil {
		return err
	}
	if err := st.Save(storePath); err != nil {
		return err
	}
	fmt.Printf("stored as %s v%d in %s\n", entry.Site, entry.Version, storePath)

	// "Restart": forget everything, reload, serve the held-out half.
	reloaded, err := autowrap.LoadWrapperStore(storePath)
	if err != nil {
		return err
	}
	fresh, ok := reloaded.Latest(siteData.Name)
	if !ok {
		return fmt.Errorf("site %s missing after reload", siteData.Name)
	}
	served, err := fresh.Compile()
	if err != nil {
		return err
	}
	var heldOut []autowrap.ExtractPage
	for i := split; i < len(htmls); i++ {
		heldOut = append(heldOut, autowrap.ExtractPage{
			ID: fmt.Sprintf("%s/page-%02d", siteData.Name, i), HTML: htmls[i],
		})
	}
	rt := autowrap.NewExtractor(served, autowrap.ExtractOptions{Workers: workers})
	batch, err := rt.Run(context.Background(), heldOut)
	if err != nil {
		return err
	}
	printBatch(batch, 3)
	return nil
}

func runLearn(storePath, site, dictPath, kind string, pageFiles []string) error {
	if site == "" || dictPath == "" || len(pageFiles) == 0 {
		return fmt.Errorf("usage: wrapserve -learn -store w.json -site NAME -dict entries.txt page1.html ...")
	}
	entries, err := readLines(dictPath)
	if err != nil {
		return err
	}
	c, err := autowrap.ParseFiles(pageFiles)
	if err != nil {
		return err
	}
	labels := autowrap.DictionaryAnnotator(filepath.Base(dictPath), entries).Annotate(c)
	fmt.Printf("parsed %d pages, %d extractable nodes, %d labels\n",
		len(c.Pages), c.NumTexts(), labels.Count())
	ind, err := newInductor(kind, c)
	if err != nil {
		return err
	}
	res, err := autowrap.Learn(ind, labels, autowrap.GenericModels(c), autowrap.Options{})
	if err != nil {
		return err
	}
	if res.Best == nil {
		return fmt.Errorf("no wrapper learned")
	}
	compiled, err := autowrap.Compile(res.Best.Wrapper)
	if err != nil {
		return err
	}
	st, err := loadOrNewStore(storePath)
	if err != nil {
		return err
	}
	entry, err := st.Put(site, compiled, autowrap.StoredMeta{
		Score: res.Best.Score.Total, Labels: labels.Count(),
	})
	if err != nil {
		return err
	}
	if err := st.Save(storePath); err != nil {
		return err
	}
	fmt.Printf("stored %s v%d (%s): %s\n", entry.Site, entry.Version, entry.Lang, compiled.Rule())
	return nil
}

func runExtract(storePath, site string, workers int, pageFiles []string) error {
	if site == "" || len(pageFiles) == 0 {
		return fmt.Errorf("usage: wrapserve -extract -store w.json -site NAME page1.html ...")
	}
	st, err := autowrap.LoadWrapperStore(storePath)
	if err != nil {
		return err
	}
	entry, ok := st.Latest(site)
	if !ok {
		return fmt.Errorf("site %q not in store (have: %s)", site, strings.Join(st.Sites(), ", "))
	}
	compiled, err := entry.Compile()
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "serving %s v%d (%s): %s\n",
		entry.Site, entry.Version, entry.Lang, compiled.Rule())
	pages := make([]autowrap.ExtractPage, len(pageFiles))
	for i, path := range pageFiles {
		b, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		pages[i] = autowrap.ExtractPage{ID: path, HTML: string(b)}
	}
	rt := autowrap.NewExtractor(compiled, autowrap.ExtractOptions{Workers: workers})
	batch, err := rt.Run(context.Background(), pages)
	if err != nil {
		return err
	}
	for _, res := range batch.Results {
		if res.Err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", res.ID, res.Err)
			continue
		}
		for _, txt := range res.Texts {
			fmt.Printf("%s\t%s\n", res.ID, txt)
		}
	}
	fmt.Fprintln(os.Stderr, batch.Stats.String())
	return nil
}

// printBatch shows up to perPage records of each page plus the stats line.
func printBatch(batch *autowrap.ExtractBatch, perPage int) {
	for _, res := range batch.Results {
		if res.Err != nil {
			fmt.Printf("  %s: ERROR %v\n", res.ID, res.Err)
			continue
		}
		shown := res.Texts
		suffix := ""
		if len(shown) > perPage {
			suffix = fmt.Sprintf(" (+%d more)", len(shown)-perPage)
			shown = shown[:perPage]
		}
		fmt.Printf("  %s (%v): %s%s\n", res.ID, res.Elapsed.Round(time.Microsecond),
			strings.Join(shown, " | "), suffix)
	}
	fmt.Println(batch.Stats.String())
}

func loadOrNewStore(path string) (*store.Store, error) {
	if _, err := os.Stat(path); err != nil {
		if os.IsNotExist(err) {
			return autowrap.NewWrapperStore(), nil
		}
		return nil, err
	}
	return autowrap.LoadWrapperStore(path)
}

// readLines matches cmd/wrapinduce's dictionary format: one entry per
// line, blank lines and '#' comments skipped.
func readLines(path string) ([]string, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var out []string
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line != "" && !strings.HasPrefix(line, "#") {
			out = append(out, line)
		}
	}
	return out, sc.Err()
}
