// Command wrapserve exercises the learn/serve/maintain lifecycle end to
// end: learning produces a portable compiled wrapper, the versioned store
// persists it, the streaming extraction runtime serves it to pages the
// learner never saw — across process restarts — and the drift monitor
// detects a changed template and dispatches validated re-learning.
//
// Usage:
//
//	wrapserve -demo                      # learn -> store -> restart -> extract
//	wrapserve -demo -kind lr -workers 8  # same, LR wrapper language
//
//	wrapserve -learn -store w.json -site shop -dict names.txt p1.html p2.html ...
//	wrapserve -extract -store w.json -site shop fresh1.html fresh2.html ...
//
//	wrapserve -monitor                   # learn clean, serve a mutated template,
//	                                     # watch the health window trip (exit 3)
//	wrapserve -monitor -repair           # same, then auto-relearn, validate
//	                                     # against the incumbent, promote
//	wrapserve -rollback -store w.json -site shop   # revert to the previous
//	                                               # promoted version
//
// -learn runs noise-tolerant induction over the given pages, compiles the
// winning wrapper and appends it as a new serving version of the site's
// entry in the store (creating the store file if needed). -extract reloads
// the store in a fresh process and streams the given pages through the
// extraction runtime, printing one tab-separated line per record and a
// throughput summary. -demo performs learn, save, reload and extract in
// one run, splitting a generated DEALERS-style site into training and
// held-out pages.
//
// -monitor exercises the maintenance loop against sitegen-style template
// mutation: it learns v1 on a pristine generated site, then serves the
// same site re-rendered with -drift template mutations (identical record
// data, different markup — see sitegen -drift) through a monitored
// extractor until the sliding health window trips. With -repair it then
// re-learns on the drifted pages, stages the winner as v2, validates it
// against v1 on a held-out sample, promotes it only on a strict win, and
// re-serves to show recovery; without -repair it stops at detection.
//
// Exit codes: 0 success (including a successful repair); 1 runtime error;
// 2 usage error; 3 drift detected but not repaired (no -repair flag, or
// the re-learned candidate failed held-out validation and the incumbent
// kept serving).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"autowrap"
	"autowrap/internal/dataset"
	"autowrap/internal/experiments"
	"autowrap/internal/store"
)

// errDriftUnrepaired distinguishes "the monitor tripped and serving is
// still on the broken wrapper" (exit 3) from runtime errors (exit 1).
var errDriftUnrepaired = errors.New("drift detected, serving wrapper not repaired")

func main() {
	var (
		demo     = flag.Bool("demo", false, "run the full learn -> store -> restart -> extract cycle on a generated site")
		learn    = flag.Bool("learn", false, "learn a wrapper from HTML files and store it")
		extr     = flag.Bool("extract", false, "load the store and extract from HTML files")
		monitor  = flag.Bool("monitor", false, "learn on a clean generated site, serve a template-mutated twin, and watch the drift monitor trip")
		repair   = flag.Bool("repair", false, "with -monitor: auto-relearn the tripped site, validate against the incumbent, and promote on a win")
		rollback = flag.Bool("rollback", false, "revert -site to its previously promoted version")
		storeP   = flag.String("store", "wrappers.json", "wrapper store path")
		site     = flag.String("site", "", "site name in the store (required for -learn/-extract/-rollback)")
		dictPath = flag.String("dict", "", "dictionary file for -learn (one entry per line)")
		kind     = flag.String("kind", "xpath", "wrapper language: xpath | lr")
		workers  = flag.Int("workers", 0, "extraction workers (0 = GOMAXPROCS)")
		pages    = flag.Int("pages", 16, "pages of the generated demo site")
		driftN   = flag.Int("drift", 2, "template mutations applied to the served twin in -monitor mode")
		window   = flag.Int("window", 8, "health sliding-window size in -monitor mode")
	)
	flag.Parse()
	var err error
	switch {
	case *monitor:
		err = runMonitor(*storeP, *kind, *workers, *pages, *driftN, *window, *repair)
	case *demo:
		err = runDemo(*storeP, *kind, *workers, *pages)
	case *learn:
		err = runLearn(*storeP, *site, *dictPath, *kind, flag.Args())
	case *extr:
		err = runExtract(*storeP, *site, *workers, flag.Args())
	case *rollback:
		err = runRollback(*storeP, *site)
	default:
		flag.Usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "wrapserve:", err)
		if errors.Is(err, errDriftUnrepaired) {
			os.Exit(3)
		}
		os.Exit(1)
	}
}

// newInductor is the shared kind-string dispatch (xpath | lr).
func newInductor(kind string, c *autowrap.Corpus) (autowrap.Inductor, error) {
	return experiments.NewInductor(kind, c)
}

// runDemo is the zero-setup proof of the whole lifecycle.
func runDemo(storePath, kind string, workers, numPages int) error {
	if numPages < 4 {
		return fmt.Errorf("-pages must be >= 4 (need held-out pages)")
	}
	ds, err := dataset.Dealers(dataset.DealersOptions{NumSites: 2, NumPages: numPages})
	if err != nil {
		return err
	}
	siteData := ds.Sites[0]
	var htmls []string
	for _, p := range siteData.Corpus.Pages {
		htmls = append(htmls, p.HTML)
	}
	split := numPages / 2
	fmt.Printf("site %s: %d pages; learning on %d, serving %d held-out\n",
		siteData.Name, numPages, split, numPages-split)

	// Learn on the training half only.
	train := autowrap.ParsePages(htmls[:split])
	labels := ds.Annotator.Annotate(train)
	ind, err := newInductor(kind, train)
	if err != nil {
		return err
	}
	res, err := autowrap.Learn(ind, labels, autowrap.GenericModels(train), autowrap.Options{})
	if err != nil {
		return err
	}
	if res.Best == nil {
		return fmt.Errorf("no wrapper learned (labels: %d)", labels.Count())
	}
	fmt.Printf("learned %s wrapper: %s\n", kind, res.Best.Wrapper.Rule())

	// Compile and persist.
	compiled, err := autowrap.Compile(res.Best.Wrapper)
	if err != nil {
		return err
	}
	// Append to an existing store rather than clobbering it — the demo may
	// point at a registry that -learn has already populated.
	st, err := loadOrNewStore(storePath)
	if err != nil {
		return err
	}
	entry, err := st.Put(siteData.Name, compiled, autowrap.StoredMeta{
		Score: res.Best.Score.Total, Labels: labels.Count(),
	})
	if err != nil {
		return err
	}
	if err := st.Save(storePath); err != nil {
		return err
	}
	fmt.Printf("stored as %s v%d in %s\n", entry.Site, entry.Version, storePath)

	// "Restart": forget everything, reload, serve the held-out half.
	reloaded, err := autowrap.LoadWrapperStore(storePath)
	if err != nil {
		return err
	}
	fresh, ok := reloaded.Active(siteData.Name)
	if !ok {
		return fmt.Errorf("site %s missing after reload", siteData.Name)
	}
	served, err := fresh.Compile()
	if err != nil {
		return err
	}
	var heldOut []autowrap.ExtractPage
	for i := split; i < len(htmls); i++ {
		heldOut = append(heldOut, autowrap.ExtractPage{
			ID: fmt.Sprintf("%s/page-%02d", siteData.Name, i), HTML: htmls[i],
		})
	}
	rt := autowrap.NewExtractor(served, autowrap.ExtractOptions{Workers: workers})
	batch, err := rt.Run(context.Background(), heldOut)
	if err != nil {
		return err
	}
	printBatch(batch, 3)
	return nil
}

// runMonitor is the zero-setup proof of the maintenance loop: learn on a
// pristine generated site, serve its template-mutated twin (same record
// data, drifted markup) through a monitored extractor until the health
// window trips, then — with doRepair — auto-relearn, validate and promote.
func runMonitor(storePath, kind string, workers, numPages, driftN, window int, doRepair bool) error {
	if numPages < 8 {
		return fmt.Errorf("-pages must be >= 8 (the health window needs traffic)")
	}
	if driftN < 1 {
		return fmt.Errorf("-drift must be >= 1 (no drift, nothing to detect)")
	}
	opts := dataset.DealersOptions{NumSites: 1, NumPages: numPages}
	ds, err := dataset.Dealers(opts)
	if err != nil {
		return err
	}
	opts.Drift = driftN
	dsm, err := dataset.Dealers(opts)
	if err != nil {
		return err
	}
	clean, mutated := ds.Sites[0], dsm.Sites[0]
	fmt.Printf("site %s: %d pages, template will drift by %d step(s)\n",
		clean.Name, numPages, driftN)

	// Learn v1 on the pristine site; StoreBatch records the learn-time
	// profile the monitor calibrates against.
	mkInductor := func(c *autowrap.Corpus) (autowrap.Inductor, error) {
		return newInductor(kind, c)
	}
	config := autowrap.NewLearnConfig(autowrap.GenericModels(clean.Corpus), autowrap.Options{})
	batch, err := autowrap.LearnBatch(context.Background(), []autowrap.BatchSite{{
		Name:        clean.Name,
		Corpus:      clean.Corpus,
		Annotator:   ds.Annotator,
		NewInductor: mkInductor,
		Config:      config,
	}}, autowrap.BatchOptions{})
	if err != nil {
		return err
	}
	st, err := loadOrNewStore(storePath)
	if err != nil {
		return err
	}
	if n, err := autowrap.StoreBatch(st, batch); n != 1 {
		return fmt.Errorf("learning the pristine site failed: %v", err)
	}
	if err := st.Save(storePath); err != nil {
		return err
	}
	v1, _ := st.Active(clean.Name)
	fmt.Printf("learned and promoted %s v%d (%s): %s\n", v1.Site, v1.Version, v1.Lang, v1.Rule)
	fmt.Printf("learn-time profile: %.1f records/page over %d pages\n",
		v1.Profile.MeanRecords, v1.Profile.Pages)

	// Serve the drifted twin through a monitored runtime.
	served, err := v1.Compile()
	if err != nil {
		return err
	}
	monitor := autowrap.NewMonitor(autowrap.HealthPolicy{
		Window:   window,
		MinPages: window / 2,
		OnTrip: func(site string, s autowrap.HealthStats) {
			fmt.Printf("!! DRIFT DETECTED after %d pages: %s\n", s.Pages, s)
		},
	})
	health := monitor.Register(clean.Name, v1.Profile)
	rt := autowrap.NewExtractor(served, autowrap.ExtractOptions{Workers: workers, OnResult: health.Observe})
	freshHTML := make([]string, len(mutated.Corpus.Pages))
	pages := make([]autowrap.ExtractPage, len(mutated.Corpus.Pages))
	for i, p := range mutated.Corpus.Pages {
		freshHTML[i] = p.HTML
		pages[i] = autowrap.ExtractPage{ID: fmt.Sprintf("%s/drifted-%02d", clean.Name, i), HTML: p.HTML}
	}
	fmt.Printf("serving %d pages of the drifted template through v%d...\n", len(pages), v1.Version)
	if _, err := rt.Run(context.Background(), pages); err != nil {
		return err
	}
	fmt.Printf("runtime health: %+v\n", rt.Health())
	if !health.Tripped() {
		fmt.Println("monitor stayed healthy — the wrapper survived this drift")
		return nil
	}
	if !doRepair {
		fmt.Println("re-run with -repair to auto-relearn, or roll forward manually with -learn")
		return fmt.Errorf("site %s: %w", clean.Name, errDriftUnrepaired)
	}

	// Auto-relearn on the freshest (drifted) pages; promotion only happens
	// if the candidate beats the incumbent on a held-out sample.
	rep := &autowrap.Repairer{
		Store: st,
		Spec: func(site string, c *autowrap.Corpus) (autowrap.BatchSite, error) {
			return autowrap.BatchSite{
				Annotator:   ds.Annotator,
				NewInductor: mkInductor,
				Config:      autowrap.NewLearnConfig(autowrap.GenericModels(c), autowrap.Options{}),
			}, nil
		},
		Monitor: monitor,
	}
	report, err := rep.Repair(context.Background(), clean.Name, freshHTML)
	if err != nil {
		return err
	}
	fmt.Println("repair:", report)
	if err := st.Save(storePath); err != nil {
		return err
	}
	if !report.Promoted {
		return fmt.Errorf("site %s: candidate v%d failed held-out validation: %w",
			clean.Name, report.Candidate.Version, errDriftUnrepaired)
	}

	// Show recovery: the promoted version serves the drifted pages.
	active, _ := st.Active(clean.Name)
	repaired, err := active.Compile()
	if err != nil {
		return err
	}
	rt2 := autowrap.NewExtractor(repaired, autowrap.ExtractOptions{Workers: workers, OnResult: health.Observe})
	batch2, err := rt2.Run(context.Background(), pages)
	if err != nil {
		return err
	}
	fmt.Printf("recovered with %s v%d (%s): %s\n", active.Site, active.Version, active.Lang, active.Rule)
	printBatch(batch2, 2)
	fmt.Printf("health after repair: %s\n", health.Stats())
	fmt.Printf("previous version kept for rollback: wrapserve -rollback -store %s -site %s\n",
		storePath, clean.Name)
	return nil
}

// runRollback reverts the site to its previously promoted version.
func runRollback(storePath, site string) error {
	if site == "" {
		return fmt.Errorf("usage: wrapserve -rollback -store w.json -site NAME")
	}
	st, err := autowrap.LoadWrapperStore(storePath)
	if err != nil {
		return err
	}
	entry, err := st.Rollback(site)
	if err != nil {
		return err
	}
	if err := st.Save(storePath); err != nil {
		return err
	}
	fmt.Printf("rolled %s back to v%d (%s): %s\n", entry.Site, entry.Version, entry.Lang, entry.Rule)
	return nil
}

func runLearn(storePath, site, dictPath, kind string, pageFiles []string) error {
	if site == "" || dictPath == "" || len(pageFiles) == 0 {
		return fmt.Errorf("usage: wrapserve -learn -store w.json -site NAME -dict entries.txt page1.html ...")
	}
	entries, err := experiments.ReadDictFile(dictPath)
	if err != nil {
		return err
	}
	c, err := autowrap.ParseFiles(pageFiles)
	if err != nil {
		return err
	}
	labels := autowrap.DictionaryAnnotator(filepath.Base(dictPath), entries).Annotate(c)
	fmt.Printf("parsed %d pages, %d extractable nodes, %d labels\n",
		len(c.Pages), c.NumTexts(), labels.Count())
	ind, err := newInductor(kind, c)
	if err != nil {
		return err
	}
	res, err := autowrap.Learn(ind, labels, autowrap.GenericModels(c), autowrap.Options{})
	if err != nil {
		return err
	}
	if res.Best == nil {
		return fmt.Errorf("no wrapper learned")
	}
	compiled, err := autowrap.Compile(res.Best.Wrapper)
	if err != nil {
		return err
	}
	st, err := loadOrNewStore(storePath)
	if err != nil {
		return err
	}
	entry, err := st.Put(site, compiled, autowrap.StoredMeta{
		Score: res.Best.Score.Total, Labels: labels.Count(),
	})
	if err != nil {
		return err
	}
	if err := st.Save(storePath); err != nil {
		return err
	}
	fmt.Printf("stored %s v%d (%s): %s\n", entry.Site, entry.Version, entry.Lang, compiled.Rule())
	return nil
}

func runExtract(storePath, site string, workers int, pageFiles []string) error {
	if site == "" || len(pageFiles) == 0 {
		return fmt.Errorf("usage: wrapserve -extract -store w.json -site NAME page1.html ...")
	}
	st, err := autowrap.LoadWrapperStore(storePath)
	if err != nil {
		return err
	}
	// Serve the promoted (validated) version, not the newest: a staged
	// repair candidate that failed validation must never serve.
	entry, ok := st.Active(site)
	if !ok {
		if _, staged := st.Latest(site); staged {
			return fmt.Errorf("site %q has only unpromoted candidate versions; promote one first", site)
		}
		return fmt.Errorf("site %q not in store (have: %s)", site, strings.Join(st.Sites(), ", "))
	}
	compiled, err := entry.Compile()
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "serving %s v%d (%s): %s\n",
		entry.Site, entry.Version, entry.Lang, compiled.Rule())
	pages := make([]autowrap.ExtractPage, len(pageFiles))
	for i, path := range pageFiles {
		b, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		pages[i] = autowrap.ExtractPage{ID: path, HTML: string(b)}
	}
	rt := autowrap.NewExtractor(compiled, autowrap.ExtractOptions{Workers: workers})
	batch, err := rt.Run(context.Background(), pages)
	if err != nil {
		return err
	}
	for _, res := range batch.Results {
		if res.Err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", res.ID, res.Err)
			continue
		}
		for _, txt := range res.Texts {
			fmt.Printf("%s\t%s\n", res.ID, txt)
		}
	}
	fmt.Fprintln(os.Stderr, batch.Stats.String())
	return nil
}

// printBatch shows up to perPage records of each page plus the stats line.
func printBatch(batch *autowrap.ExtractBatch, perPage int) {
	for _, res := range batch.Results {
		if res.Err != nil {
			fmt.Printf("  %s: ERROR %v\n", res.ID, res.Err)
			continue
		}
		shown := res.Texts
		suffix := ""
		if len(shown) > perPage {
			suffix = fmt.Sprintf(" (+%d more)", len(shown)-perPage)
			shown = shown[:perPage]
		}
		fmt.Printf("  %s (%v): %s%s\n", res.ID, res.Elapsed.Round(time.Microsecond),
			strings.Join(shown, " | "), suffix)
	}
	fmt.Println(batch.Stats.String())
}

func loadOrNewStore(path string) (*store.Store, error) {
	if _, err := os.Stat(path); err != nil {
		if os.IsNotExist(err) {
			return autowrap.NewWrapperStore(), nil
		}
		return nil, err
	}
	return autowrap.LoadWrapperStore(path)
}
