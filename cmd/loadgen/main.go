// Command loadgen replays a sitegen corpus against a running wrapserved
// daemon at a target request rate and reports throughput and latency
// percentiles — the measurement half of the serving system.
//
// Usage:
//
//	sitegen -dataset dealers -sites 8 -out corpus
//	wrapserved -store wrappers.json &
//	loadgen -addr http://localhost:8080 -corpus corpus -qps 50 -duration 10s
//
// The corpus directory is walked for *.html files; each page belongs to the
// site named by its parent directory (exactly sitegen's layout,
// out/DATASET/site-name/page-NNN.html). Before the run, loadgen fetches
// /v1/sites and keeps only sites the server actually serves, so a corpus
// can be broader than the store.
//
// Traffic is mixed-site: every request picks a site and -batch of its pages
// with a seeded RNG, so runs are reproducible. The generator is open-loop
// up to -concurrency outstanding requests (beyond that it applies its own
// backpressure and the achieved rate drops below -qps, which the report
// shows honestly).
//
// Against a sharded fleet (wrapserved -shards N) the /v1/sites probe also
// learns which shard owns each site, and the report breaks sent/ok/
// rejected/failed and achieved req/s down per shard alongside the merged
// client-side latency table — the per-partition view of the same run.
// Against a forwarding front (wrapserved -role front) the /healthz probe
// additionally maps each shard to its peer process's address, and the
// per-shard rows carry it — the row that degrades is the process to look
// at.
//
// 429 responses are counted as "rejected" — that is the server's admission
// control working, not a failure; with -respect-retry-after loadgen waits
// out the server's Retry-After hint before the next request on that worker.
// Anything else non-2xx, and transport errors, count as failed. Exit code
// is 0 when no request failed, 1 otherwise.
//
// With -repair-every the run turns into a mixed maintenance scenario: on
// that period a repair job is submitted over POST /v1/repair for a random
// served site, built from -repair-pages of its corpus pages. The server
// answers 202 immediately (the learn happens on its background job plane),
// so extract throughput must not dip — which is exactly what this mode
// measures. 202 counts as accepted; 429/503 as refused backpressure (not
// failure); anything else fails the run.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"io/fs"
	"math/rand"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"autowrap/internal/serve"
)

func main() {
	var (
		addr     = flag.String("addr", "http://localhost:8080", "wrapserved base URL")
		corpus   = flag.String("corpus", "", "sitegen output directory (required)")
		qps      = flag.Float64("qps", 50, "target request rate")
		duration = flag.Duration("duration", 10*time.Second, "run length")
		conc     = flag.Int("concurrency", 16, "max outstanding requests")
		batch    = flag.Int("batch", 1, "pages per request")
		timeout  = flag.Duration("timeout", 10*time.Second, "per-request client timeout")
		seed     = flag.Int64("seed", 1, "traffic RNG seed")
		respect  = flag.Bool("respect-retry-after", false, "sleep out Retry-After hints after a 429")
		site     = flag.String("site", "", "restrict traffic to one site")
		repEvery = flag.Duration("repair-every", 0, "also submit an async repair job this often (0 disables; mixed extract+repair scenario)")
		repPages = flag.Int("repair-pages", 8, "corpus pages per submitted repair job")
	)
	flag.Parse()
	if *corpus == "" {
		fmt.Fprintln(os.Stderr, "loadgen: -corpus is required")
		flag.Usage()
		os.Exit(2)
	}
	rep, err := run(*addr, *corpus, *qps, *duration, *conc, *batch, *timeout, *seed, *respect, *site, *repEvery, *repPages)
	if err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(1)
	}
	fmt.Print(rep)
	if rep.Failed > 0 {
		os.Exit(1)
	}
}

// sitePages is one site's replayable page set. shard is the serving
// shard the daemon reported for the site (0 on an unsharded server), so
// the report can break traffic down the way the fleet partitions it.
type sitePages struct {
	name  string
	shard int
	pages []string // raw HTML
}

// loadCorpus walks the sitegen output tree: site name = parent directory of
// each .html file.
func loadCorpus(root string) ([]sitePages, error) {
	bySite := make(map[string][]string)
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() || !strings.HasSuffix(path, ".html") {
			return nil
		}
		b, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		site := filepath.Base(filepath.Dir(path))
		bySite[site] = append(bySite[site], string(b))
		return nil
	})
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(bySite))
	for name := range bySite {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make([]sitePages, 0, len(names))
	for _, name := range names {
		out = append(out, sitePages{name: name, pages: bySite[name]})
	}
	return out, nil
}

// servedSites asks the daemon which sites it can serve, and on which
// shard each lives (a sharded fleet stamps SiteStatus.Shard; a single
// server reports 0 for everything).
func servedSites(client *http.Client, addr string) (map[string]int, error) {
	resp, err := client.Get(addr + "/v1/sites")
	if err != nil {
		return nil, fmt.Errorf("fetching /v1/sites: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("/v1/sites: status %d", resp.StatusCode)
	}
	var sites []serve.SiteStatus
	if err := json.NewDecoder(resp.Body).Decode(&sites); err != nil {
		return nil, fmt.Errorf("decoding /v1/sites: %w", err)
	}
	out := make(map[string]int, len(sites))
	for _, s := range sites {
		if s.ActiveVersion > 0 {
			out[s.Site] = s.Shard
		}
	}
	return out, nil
}

// peerAddrs asks /healthz whether the target is a forwarding front and,
// when it is, maps each shard to the peer process serving it. Best
// effort: a single server or in-process fleet reports no peers, and any
// probe failure just leaves the per-shard rows unlabeled.
func peerAddrs(client *http.Client, addr string) map[int]string {
	resp, err := client.Get(addr + "/healthz")
	if err != nil {
		return nil
	}
	defer resp.Body.Close()
	var h serve.FleetHealthzResponse
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil || len(h.Peers) == 0 {
		return nil
	}
	out := make(map[int]string, len(h.Peers))
	for _, p := range h.Peers {
		out[p.Shard] = p.Addr
	}
	return out
}

// shardCounts is one serving shard's slice of the run.
type shardCounts struct {
	Sent, OK, Rejected, Failed int
}

// Report aggregates a run.
type Report struct {
	Sent, OK, Rejected, Failed int
	Pages, Records             int
	// Repair-job submissions of the mixed scenario: accepted = 202,
	// refused = the job queue's own 429/503 backpressure.
	RepairsSent, RepairsAccepted, RepairsRefused int
	TargetQPS, AchievedQPS                       float64
	Wall                                         time.Duration
	// perShard breaks the counters down by the serving shard each site
	// lives on; the breakdown only prints when the fleet has >1 shard.
	perShard map[int]*shardCounts
	// peerAddr maps shard -> peer process address when the target is a
	// forwarding front (empty otherwise); it labels the per-shard rows.
	peerAddr  map[int]string
	latencies []time.Duration // of successful requests, sorted post-run
	failures  []string        // first few failure descriptions
}

// shard returns the counter slot for one shard, allocating on first use.
func (r *Report) shard(k int) *shardCounts {
	if r.perShard == nil {
		r.perShard = make(map[int]*shardCounts)
	}
	sc := r.perShard[k]
	if sc == nil {
		sc = &shardCounts{}
		r.perShard[k] = sc
	}
	return sc
}

func (r *Report) quantile(q float64) time.Duration {
	if len(r.latencies) == 0 {
		return 0
	}
	i := int(q * float64(len(r.latencies)))
	if i >= len(r.latencies) {
		i = len(r.latencies) - 1
	}
	return r.latencies[i]
}

func (r *Report) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "loadgen: %d requests in %.1fs (target %.1f req/s, achieved %.1f, %+.1f%%)\n",
		r.Sent, r.Wall.Seconds(), r.TargetQPS, r.AchievedQPS,
		(r.AchievedQPS-r.TargetQPS)*100/r.TargetQPS)
	fmt.Fprintf(&sb, "  ok=%d rejected=%d failed=%d pages=%d records=%d\n",
		r.OK, r.Rejected, r.Failed, r.Pages, r.Records)
	if r.RepairsSent > 0 {
		fmt.Fprintf(&sb, "  repairs: sent=%d accepted=%d refused=%d\n",
			r.RepairsSent, r.RepairsAccepted, r.RepairsRefused)
	}
	if len(r.latencies) > 0 {
		var sum time.Duration
		for _, d := range r.latencies {
			sum += d
		}
		ms := func(d time.Duration) float64 { return float64(d.Microseconds()) / 1000 }
		// Client-side latency of OK requests, merged across all shards:
		// one sorted population, so these are true fleet quantiles.
		fmt.Fprintf(&sb, "  latency ms (merged, client-side, n=%d):\n", len(r.latencies))
		fmt.Fprintf(&sb, "    p50=%.2f p75=%.2f p90=%.2f p95=%.2f p99=%.2f p99.9=%.2f max=%.2f mean=%.2f\n",
			ms(r.quantile(0.50)), ms(r.quantile(0.75)), ms(r.quantile(0.90)),
			ms(r.quantile(0.95)), ms(r.quantile(0.99)), ms(r.quantile(0.999)),
			ms(r.latencies[len(r.latencies)-1]), ms(sum/time.Duration(len(r.latencies))))
	}
	if len(r.perShard) > 1 && r.Wall > 0 {
		shards := make([]int, 0, len(r.perShard))
		for k := range r.perShard {
			shards = append(shards, k)
		}
		sort.Ints(shards)
		fmt.Fprintf(&sb, "  per shard (achieved req/s from wall %.1fs):\n", r.Wall.Seconds())
		for _, k := range shards {
			sc := r.perShard[k]
			label := fmt.Sprintf("shard %d", k)
			if addr := r.peerAddr[k]; addr != "" {
				label = fmt.Sprintf("shard %d (%s)", k, addr)
			}
			fmt.Fprintf(&sb, "    %s: sent=%d ok=%d rejected=%d failed=%d achieved=%.1f req/s\n",
				label, sc.Sent, sc.OK, sc.Rejected, sc.Failed,
				float64(sc.Sent)/r.Wall.Seconds())
		}
	}
	for _, f := range r.failures {
		fmt.Fprintf(&sb, "  FAILED: %s\n", f)
	}
	return sb.String()
}

func run(addr, corpusDir string, qps float64, duration time.Duration,
	conc, batch int, timeout time.Duration, seed int64, respect bool,
	onlySite string, repairEvery time.Duration, repairPages int) (*Report, error) {
	if qps <= 0 || batch < 1 || conc < 1 {
		return nil, fmt.Errorf("need -qps > 0, -batch >= 1, -concurrency >= 1")
	}
	corpus, err := loadCorpus(corpusDir)
	if err != nil {
		return nil, err
	}
	client := &http.Client{Timeout: timeout}
	served, err := servedSites(client, addr)
	if err != nil {
		return nil, err
	}
	peers := peerAddrs(client, addr)
	var replay []sitePages
	for _, sp := range corpus {
		if onlySite != "" && sp.name != onlySite {
			continue
		}
		if shard, ok := served[sp.name]; ok {
			sp.shard = shard
			replay = append(replay, sp)
		}
	}
	if len(replay) == 0 {
		return nil, fmt.Errorf("no overlap between corpus sites (%d) and served sites (%d)",
			len(corpus), len(served))
	}
	fmt.Fprintf(os.Stderr, "loadgen: replaying %d site(s) at %.1f req/s for %v (batch %d)\n",
		len(replay), qps, duration, batch)

	rep := &Report{TargetQPS: qps, peerAddr: peers}
	var mu sync.Mutex
	var wg sync.WaitGroup
	sem := make(chan struct{}, conc)
	rng := rand.New(rand.NewSource(seed))
	interval := time.Duration(float64(time.Second) / qps)
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	stop := time.After(duration)
	start := time.Now()

	// The mixed scenario submits async repair jobs alongside the extract
	// stream, on its own goroutine with its own seeded RNG so the extract
	// traffic draw stays byte-identical with or without it.
	var repairWG sync.WaitGroup
	repairStop := make(chan struct{})
	if repairEvery > 0 {
		repairWG.Add(1)
		go func() {
			defer repairWG.Done()
			rrng := rand.New(rand.NewSource(seed + 1))
			rt := time.NewTicker(repairEvery)
			defer rt.Stop()
			for {
				select {
				case <-repairStop:
					return
				case <-rt.C:
					sp := replay[rrng.Intn(len(replay))]
					n := repairPages
					if n < 2 {
						n = 2
					}
					if n > len(sp.pages) {
						n = len(sp.pages)
					}
					pages := make([]string, n)
					for i := range pages {
						pages[i] = sp.pages[rrng.Intn(len(sp.pages))]
					}
					oneRepair(client, addr, sp.name, pages, rep, &mu)
				}
			}
		}()
	}

loop:
	for {
		select {
		case <-stop:
			break loop
		case <-ticker.C:
			// Pre-draw the traffic choice on the generator goroutine so the
			// RNG stays deterministic.
			sp := replay[rng.Intn(len(replay))]
			pageIdx := make([]int, batch)
			for i := range pageIdx {
				pageIdx[i] = rng.Intn(len(sp.pages))
			}
			sem <- struct{}{} // own backpressure beyond -concurrency
			wg.Add(1)
			go func() {
				defer wg.Done()
				defer func() { <-sem }()
				oneRequest(client, addr, sp, pageIdx, respect, rep, &mu)
			}()
		}
	}
	close(repairStop)
	repairWG.Wait()
	wg.Wait()
	rep.Wall = time.Since(start)
	if rep.Wall > 0 {
		rep.AchievedQPS = float64(rep.Sent) / rep.Wall.Seconds()
	}
	sort.Slice(rep.latencies, func(i, j int) bool { return rep.latencies[i] < rep.latencies[j] })
	return rep, nil
}

func oneRequest(client *http.Client, addr string, sp sitePages, pageIdx []int,
	respect bool, rep *Report, mu *sync.Mutex) {
	req := serve.ExtractRequest{Site: sp.name}
	for _, pi := range pageIdx {
		req.Pages = append(req.Pages, serve.PageInput{
			ID: fmt.Sprintf("%s/p%d", sp.name, pi), HTML: sp.pages[pi],
		})
	}
	body, err := json.Marshal(req)
	if err != nil {
		record(rep, mu, func(r *Report) { sent(r, sp.shard); failShard(r, sp.shard, err.Error()) })
		return
	}
	t0 := time.Now()
	resp, err := client.Post(addr+"/v1/extract", "application/json", bytes.NewReader(body))
	lat := time.Since(t0)
	if err != nil {
		record(rep, mu, func(r *Report) { sent(r, sp.shard); failShard(r, sp.shard, err.Error()) })
		return
	}
	defer resp.Body.Close()
	switch {
	case resp.StatusCode == http.StatusOK:
		var out serve.ExtractResponse
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			record(rep, mu, func(r *Report) { sent(r, sp.shard); failShard(r, sp.shard, "bad response body: "+err.Error()) })
			return
		}
		records, pageFails := 0, 0
		for _, pr := range out.Results {
			if pr.Error != "" {
				pageFails++
			}
			records += len(pr.Records)
		}
		record(rep, mu, func(r *Report) {
			sent(r, sp.shard)
			if pageFails > 0 {
				failShard(r, sp.shard, fmt.Sprintf("%s: %d page(s) failed inside a 200", sp.name, pageFails))
				return
			}
			r.OK++
			r.shard(sp.shard).OK++
			r.Pages += len(out.Results)
			r.Records += records
			r.latencies = append(r.latencies, lat)
		})
	case resp.StatusCode == http.StatusTooManyRequests:
		io.Copy(io.Discard, resp.Body)
		record(rep, mu, func(r *Report) {
			sent(r, sp.shard)
			r.Rejected++
			r.shard(sp.shard).Rejected++
		})
		if respect {
			if s, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && s > 0 {
				time.Sleep(time.Duration(s) * time.Second)
			}
		}
	default:
		b, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		record(rep, mu, func(r *Report) {
			sent(r, sp.shard)
			failShard(r, sp.shard, fmt.Sprintf("%s: status %d: %s", sp.name, resp.StatusCode, bytes.TrimSpace(b)))
		})
	}
}

// sent bumps both the run-wide and per-shard sent counters.
func sent(r *Report, shard int) {
	r.Sent++
	r.shard(shard).Sent++
}

// failShard records a failure against the run and the owning shard.
func failShard(r *Report, shard int, msg string) {
	fail(r, msg)
	r.shard(shard).Failed++
}

// oneRepair submits one async repair job. 202 means the maintenance
// plane accepted it; 429/503 mean its bounded queue pushed back (fine);
// anything else is a failure.
func oneRepair(client *http.Client, addr, site string, pages []string,
	rep *Report, mu *sync.Mutex) {
	body, err := json.Marshal(serve.RepairRequest{Site: site, Pages: pages})
	if err != nil {
		record(rep, mu, func(r *Report) { r.RepairsSent++; fail(r, err.Error()) })
		return
	}
	resp, err := client.Post(addr+"/v1/repair", "application/json", bytes.NewReader(body))
	if err != nil {
		record(rep, mu, func(r *Report) { r.RepairsSent++; fail(r, "repair: "+err.Error()) })
		return
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	record(rep, mu, func(r *Report) {
		r.RepairsSent++
		switch resp.StatusCode {
		case http.StatusAccepted:
			r.RepairsAccepted++
		case http.StatusTooManyRequests, http.StatusServiceUnavailable:
			r.RepairsRefused++
		default:
			fail(r, fmt.Sprintf("repair %s: status %d", site, resp.StatusCode))
		}
	})
}

func record(rep *Report, mu *sync.Mutex, fn func(*Report)) {
	mu.Lock()
	defer mu.Unlock()
	fn(rep)
}

func fail(r *Report, msg string) {
	r.Failed++
	if len(r.failures) < 5 {
		r.failures = append(r.failures, msg)
	}
}
