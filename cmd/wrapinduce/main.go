// Command wrapinduce learns an extraction wrapper from HTML files plus a
// dictionary of known values — the end-user workflow of the paper: point it
// at the pages of one script-generated website and a cheap noisy dictionary,
// get back the extraction rule and the extracted values.
//
// Usage:
//
//	wrapinduce -dict names.txt page1.html page2.html ...
//	wrapinduce -dict names.txt -inductor lr -all 'out/*.html'
//
// The dictionary file holds one entry per line. With -naive the baseline
// (no noise tolerance) runs instead, for comparison.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"autowrap"
	"autowrap/internal/experiments"
)

func main() {
	var (
		dictPath = flag.String("dict", "", "dictionary file (one entry per line); required")
		inductor = flag.String("inductor", "xpath", "wrapper language: xpath | lr")
		naive    = flag.Bool("naive", false, "run the NAIVE baseline instead of NTW")
		topK     = flag.Int("top", 3, "show the top-K ranked wrappers")
	)
	flag.Parse()
	if *dictPath == "" || flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: wrapinduce -dict entries.txt page1.html [page2.html ...]")
		os.Exit(2)
	}
	if err := run(*dictPath, flag.Args(), *inductor, *naive, *topK); err != nil {
		fmt.Fprintln(os.Stderr, "wrapinduce:", err)
		os.Exit(1)
	}
}

func run(dictPath string, pageArgs []string, inductorKind string, naive bool, topK int) error {
	entries, err := experiments.ReadDictFile(dictPath)
	if err != nil {
		return err
	}
	paths, err := expand(pageArgs)
	if err != nil {
		return err
	}
	c, err := autowrap.ParseFiles(paths)
	if err != nil {
		return err
	}
	fmt.Printf("parsed %d pages, %d extractable text nodes\n", len(c.Pages), c.NumTexts())

	annot := autowrap.DictionaryAnnotator(filepath.Base(dictPath), entries)
	labels := annot.Annotate(c)
	fmt.Printf("dictionary (%d entries) labeled %d nodes\n\n", len(entries), labels.Count())
	if labels.Count() == 0 {
		return fmt.Errorf("no dictionary entry matched any page text; cannot learn")
	}

	var ind autowrap.Inductor
	switch inductorKind {
	case "xpath":
		ind = autowrap.NewXPathInductor(c)
	case "lr":
		ind = autowrap.NewLRInductor(c, 0)
	default:
		return fmt.Errorf("unknown inductor %q (want xpath or lr)", inductorKind)
	}

	if naive {
		w, err := autowrap.NaiveLearn(ind, labels)
		if err != nil {
			return err
		}
		fmt.Printf("NAIVE wrapper: %s\n", w.Rule())
		printExtraction(c, w)
		return nil
	}

	res, err := autowrap.Learn(ind, labels, autowrap.GenericModels(c), autowrap.Options{})
	if err != nil {
		return err
	}
	if res.Best == nil {
		return fmt.Errorf("no wrapper learned")
	}
	fmt.Printf("learned wrapper: %s\n", res.Best.Wrapper.Rule())
	fmt.Printf("score: logP(L|X)=%.2f logP(X)=%.2f (enumerated %d candidates with %d inductor calls)\n",
		res.Best.Score.LogL, res.Best.Score.LogX, len(res.Candidates), res.EnumCalls)
	printExtraction(c, res.Best.Wrapper)

	if topK > 1 && len(res.Candidates) > 1 {
		fmt.Println("\nranked wrapper space:")
		for i, cand := range res.Candidates {
			if i >= topK {
				break
			}
			fmt.Printf("  %d. score=%9.2f extracts=%-4d %s\n",
				i+1, cand.Score.Total, cand.Wrapper.Extract().Count(), cand.Wrapper.Rule())
		}
	}
	return nil
}

func printExtraction(c *autowrap.Corpus, w autowrap.Wrapper) {
	fmt.Println("\nextraction:")
	for p, values := range autowrap.Extracted(c, w) {
		fmt.Printf("  page %d: %s\n", p, strings.Join(values, " | "))
	}
}

func expand(args []string) ([]string, error) {
	var out []string
	for _, a := range args {
		if strings.ContainsAny(a, "*?[") {
			matches, err := filepath.Glob(a)
			if err != nil {
				return nil, err
			}
			out = append(out, matches...)
			continue
		}
		out = append(out, a)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no input pages")
	}
	return out, nil
}
