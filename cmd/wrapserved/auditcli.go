package main

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"

	"autowrap/internal/audit"
)

// Exit codes for the offline audit verbs. Tampering gets its own code so
// scripts and CI can tell "the ledger is broken" (act!) apart from "the
// file is missing or unreadable" (probably your path).
const (
	exitOK     = 0
	exitError  = 1
	exitTamper = 4
)

// runAuditVerb dispatches -audit-verify / -audit-export: offline,
// daemon-free integrity checks over a hash-chained audit ledger file.
// Both walk the full chain from genesis — every record's hash link and
// every Merkle checkpoint root must hold.
func runAuditVerb(o options, stdout, stderr io.Writer) int {
	if o.auditVerify != "" && o.auditExport != "" {
		fmt.Fprintln(stderr, "wrapserved: use -audit-verify or -audit-export, not both")
		return exitError
	}
	path, export := o.auditVerify, false
	if o.auditExport != "" {
		path, export = o.auditExport, true
	}
	rep, err := audit.VerifyFile(path)
	if err != nil {
		var tamper *audit.TamperError
		if errors.As(err, &tamper) {
			fmt.Fprintf(stderr, "wrapserved: TAMPERED: %v\n", err)
			return exitTamper
		}
		fmt.Fprintf(stderr, "wrapserved: %v\n", err)
		return exitError
	}
	if !export {
		fmt.Fprintf(stdout, "ok: %d record(s), %d event(s), %d checkpoint(s), last seq %d, last hash %s\n",
			rep.Records, rep.Events, rep.Checkpoints, rep.LastSeq, rep.LastHash)
		return exitOK
	}
	if err := exportCheckpoints(path, stdout); err != nil {
		fmt.Fprintf(stderr, "wrapserved: %v\n", err)
		return exitError
	}
	return exitOK
}

// checkpointRoot is one exported checkpoint: the sequence number the
// checkpoint record carries and the Merkle root over its batch (the
// record's Detail field).
type checkpointRoot struct {
	Seq    uint64 `json:"seq"`
	Shard  int    `json:"shard"`
	TimeMS int64  `json:"time_ms"`
	Root   string `json:"root"`
}

// exportCheckpoints re-reads the (already verified) ledger and dumps one
// JSON line per checkpoint record — the anchors an external system needs
// to countersign the ledger's history.
func exportCheckpoints(path string, w io.Writer) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 16<<20)
	enc := json.NewEncoder(w)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var rec audit.Record
		if err := json.Unmarshal(line, &rec); err != nil {
			return fmt.Errorf("audit export: %w", err)
		}
		if rec.Event != audit.EventCheckpoint {
			continue
		}
		if err := enc.Encode(checkpointRoot{
			Seq: rec.Seq, Shard: rec.Shard, TimeMS: rec.TimeMS, Root: rec.Detail,
		}); err != nil {
			return err
		}
	}
	return sc.Err()
}
