package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"autowrap/internal/audit"
	"autowrap/internal/drift"
	"autowrap/internal/jobs"
	"autowrap/internal/serve"
	"autowrap/internal/shard"
)

// runShard boots exactly one ring partition as an independent process:
// the full single-server stack — gate, dispatcher, monitor, job plane,
// optional auto-repair — over the slice of the registry the ring assigns
// to -shard-index, from this process's own store and log directory. The
// server refuses what is not its to serve: sites another shard owns
// answer 421, and requests pinned to a different ring (X-Ring-Hash)
// answer 503 — a front end and its peers can never silently disagree on
// topology. SIGTERM drains exactly like the single server; a front end
// can also drain it remotely via POST /v1/drain.
func runShard(o options, logger *log.Logger) error {
	if o.shards < 1 {
		return fmt.Errorf("-role shard needs -shards >= 1 (the ring size)")
	}
	if o.shardIndex < 0 || o.shardIndex >= o.shards {
		return fmt.Errorf("-shard-index %d out of range [0, %d)", o.shardIndex, o.shards)
	}
	ring := shard.NewRing(o.shards, o.vnodes)
	k := o.shardIndex

	be, err := openBackend(o, logger)
	if err != nil {
		return err
	}
	defer be.Close()
	led, err := openLedger(o, logger)
	if err != nil {
		return err
	}
	defer led.Close()

	// Boot from the owned partition only: a shard process may be handed
	// the full registry (every shard sharing one seed file) or a
	// pre-split one — either way it loads and serves just its slice.
	st, err := be.LoadPartition(ring, k)
	if err != nil {
		return err
	}
	var mon *drift.Monitor
	if o.window > 0 {
		mon = drift.NewMonitor(drift.Policy{
			Window: o.window,
			OnTrip: func(site string, s drift.Stats) {
				logger.Printf("DRIFT TRIPPED (shard %d): %s", k, s)
				if err := led.Append(k, audit.EventDriftTrip, site, 0, s.String()); err != nil {
					logger.Printf("audit drift trip %s: %v", site, err)
				}
			},
		})
	}
	recentPages := 0
	if o.autoRepair {
		recentPages = o.recentPages
	}
	dispatcher := serve.NewDispatcher(st, serve.Options{
		Workers: o.workers, Monitor: mon, RecentPages: recentPages,
	})

	var repairer *drift.Repairer
	if o.dictPath != "" {
		rep, err := newRepairer(st, mon, o.dictPath, o.kind)
		if err != nil {
			return err
		}
		repairer = rep
	}
	if o.autoRepair {
		switch {
		case repairer == nil:
			return fmt.Errorf("-auto-repair needs -dict (no annotator to re-learn with)")
		case mon == nil:
			return fmt.Errorf("-auto-repair needs drift monitoring (-window > 0)")
		case o.recentPages <= 0:
			return fmt.Errorf("-auto-repair needs -recent-pages > 0 (no cached pages to re-learn from)")
		}
	}

	var jobsM *jobs.Manager
	if repairer != nil {
		// The same s<k>- job-ID prefix the in-process fleet uses, so a
		// front end routes job lookups straight to this process.
		jobsM = jobs.New(jobs.Options{
			Workers: o.learnWorkers, QueueDepth: o.jobQueue,
			IDPrefix: fmt.Sprintf("s%d-", k),
		})
	}
	srv, err := serve.NewServer(serve.ServerConfig{
		Dispatcher: dispatcher,
		Gate: serve.NewGate(serve.GateOptions{
			MaxInFlight: o.maxInflight, MaxQueue: o.queue, RetryAfter: o.retryAfter,
		}),
		RequestTimeout:  o.timeout,
		MaxPages:        o.maxPages,
		Repairer:        repairer,
		Jobs:            jobsM,
		LearnCorpusRoot: o.corpusRoot,
		Backend:         be,
		Shard:           k,
		Ring:            ring,
		Audit:           led,
		Log:             logger,
	})
	if err != nil {
		return err
	}

	var maintainer *serve.Maintainer
	if o.autoRepair {
		maintainer, err = serve.NewMaintainer(srv, serve.MaintainerOptions{
			Interval: o.autoInterval,
			MinGap:   o.autoGap,
			Log:      logger,
		})
		if err != nil {
			return err
		}
		maintainer.Start()
		defer maintainer.Stop()
	}

	if o.debugAddr != "" {
		go func() {
			logger.Printf("pprof debug server on http://%s/debug/pprof/", o.debugAddr)
			logger.Printf("pprof server: %v", http.ListenAndServe(o.debugAddr, nil))
		}()
	}

	hs := &http.Server{Addr: o.addr, Handler: srv.Handler()}
	errc := make(chan error, 1)
	go func() {
		logger.Printf("shard %d/%d on %s: %d site(s) from %s (ring %s, maintenance plane %s, auto-repair %s)",
			k, o.shards, o.addr, st.Len(), o.storePath, ring.Fingerprint(),
			enabledWord(repairer != nil), enabledWord(o.autoRepair))
		if err := hs.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
			errc <- err
			return
		}
		errc <- nil
	}()

	// Shard drain mirrors the single server, but the job quiesce is
	// one-shot shared with POST /v1/drain — when a front end already
	// drained this process remotely, SIGTERM just finishes the listener.
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGTERM, syscall.SIGINT)
	select {
	case err := <-errc:
		return err
	case sig := <-sigc:
		logger.Printf("%s: draining shard %d (up to %v)...", sig, k, o.drainT)
		srv.SetDraining(true)
		if maintainer != nil {
			maintainer.Stop()
		}
		ctx, cancel := context.WithTimeout(context.Background(), o.drainT)
		defer cancel()
		if err := hs.Shutdown(ctx); err != nil {
			return fmt.Errorf("drain: %w", err)
		}
		if err := srv.QuiesceJobs(ctx); err != nil {
			logger.Printf("job drain: remaining jobs canceled at deadline: %v", err)
		}
		logger.Printf("drained cleanly")
		return <-errc
	}
}

// runFront boots the forwarding front end: it owns the ring (size =
// number of -peers, in ring order), holds no store, dispatcher or job
// plane of its own, and forwards every request to the owning shard over
// per-peer persistent connection pools. At boot it handshakes with each
// peer — ring fingerprint and shard index must agree; an unreachable
// peer degrades that partition instead of failing the boot. SIGTERM
// drains the fleet in order: the front stops admitting first, in-flight
// forwards finish, then every peer's job plane is drained remotely.
func runFront(o options, logger *log.Logger) error {
	peers := splitPeers(o.peers)
	if len(peers) == 0 {
		return fmt.Errorf("-role front needs -peers host:port,...")
	}
	if o.shards > 1 && o.shards != len(peers) {
		return fmt.Errorf("-shards %d disagrees with %d peer(s); the front sizes the ring from -peers", o.shards, len(peers))
	}
	ring := shard.NewRing(len(peers), o.vnodes)
	router, err := serve.NewForwardRouter(ring, peers, serve.ForwardOptions{
		RequestTimeout: o.timeout,
		Log:            logger,
	})
	if err != nil {
		return err
	}

	if o.debugAddr != "" {
		go func() {
			logger.Printf("pprof debug server on http://%s/debug/pprof/", o.debugAddr)
			logger.Printf("pprof server: %v", http.ListenAndServe(o.debugAddr, nil))
		}()
	}

	hs := &http.Server{Addr: o.addr, Handler: router.Handler()}
	errc := make(chan error, 1)
	go func() {
		logger.Printf("front on %s: forwarding to %d shard(s) %v (ring %s)",
			o.addr, len(peers), peers, ring.Fingerprint())
		if err := hs.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
			errc <- err
			return
		}
		errc <- nil
	}()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGTERM, syscall.SIGINT)
	select {
	case err := <-errc:
		return err
	case sig := <-sigc:
		logger.Printf("%s: draining front + %d peer(s) (up to %v)...", sig, len(peers), o.drainT)
		router.SetDraining(true)
		ctx, cancel := context.WithTimeout(context.Background(), o.drainT)
		defer cancel()
		if err := hs.Shutdown(ctx); err != nil {
			return fmt.Errorf("drain: %w", err)
		}
		if err := router.Drain(ctx); err != nil {
			logger.Printf("peer drain: %v", err)
		}
		logger.Printf("drained cleanly")
		return <-errc
	}
}

// splitPeers parses the -peers list, dropping empty elements so a
// trailing comma is harmless.
func splitPeers(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}
