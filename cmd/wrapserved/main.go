// Command wrapserved is the HTTP extraction daemon: it loads a versioned
// wrapper store and serves every site's active wrapper over HTTP, with
// hot-swap on promote/rollback (no restart), drift monitoring, admission
// control with backpressure, and graceful drain on SIGTERM.
//
// Usage:
//
//	wrapserved -store wrappers.json -addr :8080
//	wrapserved -store wrappers.json -dict names.txt -kind xpath   # enables /v1/repair
//
// Endpoints:
//
//	POST /v1/extract   {"site":"s","page":{"html":"..."}} or {"site":"s","pages":[...]}
//	GET  /healthz      liveness + readiness (503 while draining)
//	GET  /metrics      per-site QPS, latency quantiles, runtime health, gate counters
//	GET  /v1/sites     serving state of every site
//	POST /v1/promote   {"site":"s","version":2}
//	POST /v1/rollback  {"site":"s"}
//	POST /v1/repair    {"site":"s","pages":["<html>...",...]}
//
// The hot path is admission-controlled: at most -max-inflight requests
// extract concurrently, at most -queue more wait, and everything beyond
// that is rejected immediately with 429 and a Retry-After header — the
// daemon sheds load instead of collapsing under it. Every request gets a
// deadline (-timeout, shortenable per request via timeout_ms).
//
// /v1/repair needs an annotator to re-learn with; start the daemon with
// -dict (one dictionary entry per line) to enable it. Successful admin
// mutations (promote, rollback, repair) are persisted back to -store.
//
// On SIGTERM or SIGINT the daemon flips /healthz to 503 (so load balancers
// drain it), finishes in-flight requests, and exits 0 once idle or after
// -drain-timeout, whichever comes first.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"autowrap"
	"autowrap/internal/drift"
	"autowrap/internal/engine"
	"autowrap/internal/experiments"
	"autowrap/internal/serve"
	"autowrap/internal/store"
)

func main() {
	var (
		storeP      = flag.String("store", "wrappers.json", "wrapper store path (required; must exist)")
		addr        = flag.String("addr", ":8080", "listen address")
		workers     = flag.Int("workers", 0, "extraction workers per batch request (0 = GOMAXPROCS)")
		maxInflight = flag.Int("max-inflight", 64, "max concurrently executing extract requests")
		queue       = flag.Int("queue", 0, "max extract requests waiting for a slot (0 = 4x max-inflight, negative disables queueing)")
		retryAfter  = flag.Duration("retry-after", time.Second, "Retry-After hint attached to 429 responses")
		timeout     = flag.Duration("timeout", 30*time.Second, "per-request extraction deadline")
		maxPages    = flag.Int("max-pages", 256, "max pages per extract request")
		window      = flag.Int("window", 32, "drift-monitor sliding window in pages (0 disables monitoring)")
		dictPath    = flag.String("dict", "", "dictionary file enabling /v1/repair (one entry per line)")
		kind        = flag.String("kind", "xpath", "re-learn wrapper language for /v1/repair: xpath | lr")
		drainT      = flag.Duration("drain-timeout", 30*time.Second, "max time to wait for in-flight requests on shutdown")
	)
	flag.Parse()
	if err := run(*storeP, *addr, *workers, *maxInflight, *queue, *retryAfter,
		*timeout, *maxPages, *window, *dictPath, *kind, *drainT); err != nil {
		fmt.Fprintln(os.Stderr, "wrapserved:", err)
		os.Exit(1)
	}
}

func run(storePath, addr string, workers, maxInflight, queue int,
	retryAfter, timeout time.Duration, maxPages, window int,
	dictPath, kind string, drainTimeout time.Duration) error {
	logger := log.New(os.Stderr, "wrapserved: ", log.LstdFlags)

	st, err := store.Load(storePath)
	if err != nil {
		return err
	}
	var mon *drift.Monitor
	if window > 0 {
		mon = drift.NewMonitor(drift.Policy{
			Window: window,
			OnTrip: func(site string, s drift.Stats) {
				logger.Printf("DRIFT TRIPPED: %s", s)
			},
		})
	}
	dispatcher := serve.NewDispatcher(st, serve.Options{Workers: workers, Monitor: mon})

	var repairer *drift.Repairer
	if dictPath != "" {
		rep, err := newRepairer(st, mon, dictPath, kind)
		if err != nil {
			return err
		}
		repairer = rep
	}

	srv, err := serve.NewServer(serve.ServerConfig{
		Dispatcher: dispatcher,
		Gate: serve.NewGate(serve.GateOptions{
			MaxInFlight: maxInflight, MaxQueue: queue, RetryAfter: retryAfter,
		}),
		RequestTimeout: timeout,
		MaxPages:       maxPages,
		Repairer:       repairer,
		StorePath:      storePath,
		Log:            logger,
	})
	if err != nil {
		return err
	}

	hs := &http.Server{Addr: addr, Handler: srv.Handler()}
	errc := make(chan error, 1)
	go func() {
		logger.Printf("serving %d site(s) from %s on %s (repair %s)",
			st.Len(), storePath, addr, enabledWord(repairer != nil))
		if err := hs.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
			errc <- err
			return
		}
		errc <- nil
	}()

	// Graceful drain: flip readiness first so load balancers steer away,
	// then let in-flight requests finish.
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGTERM, syscall.SIGINT)
	select {
	case err := <-errc:
		return err
	case sig := <-sigc:
		logger.Printf("%s: draining (up to %v)...", sig, drainTimeout)
		srv.SetDraining(true)
		ctx, cancel := context.WithTimeout(context.Background(), drainTimeout)
		defer cancel()
		if err := hs.Shutdown(ctx); err != nil {
			return fmt.Errorf("drain: %w", err)
		}
		logger.Printf("drained cleanly")
		return <-errc
	}
}

// newRepairer wires the drift-repair loop for /v1/repair: re-learn with a
// dictionary annotator over the posted fresh pages, in the configured
// wrapper language.
func newRepairer(st *store.Store, mon *drift.Monitor, dictPath, kind string) (*drift.Repairer, error) {
	entries, err := experiments.ReadDictFile(dictPath)
	if err != nil {
		return nil, err
	}
	if len(entries) == 0 {
		return nil, fmt.Errorf("dictionary %s is empty", dictPath)
	}
	annot := autowrap.DictionaryAnnotator(filepath.Base(dictPath), entries)
	if _, err := experiments.NewInductor(kind, autowrap.ParsePages([]string{"<p>probe</p>"})); err != nil {
		return nil, err
	}
	return &drift.Repairer{
		Store: st,
		Spec: func(site string, c *autowrap.Corpus) (engine.SiteSpec, error) {
			return engine.SiteSpec{
				Annotator: annot,
				NewInductor: func(c *autowrap.Corpus) (autowrap.Inductor, error) {
					return experiments.NewInductor(kind, c)
				},
				Config: autowrap.NewLearnConfig(autowrap.GenericModels(c), autowrap.Options{}),
			}, nil
		},
		Monitor: mon,
	}, nil
}

func enabledWord(b bool) string {
	if b {
		return "enabled"
	}
	return "disabled"
}
