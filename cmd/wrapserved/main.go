// Command wrapserved is the HTTP extraction daemon: it loads a versioned
// wrapper store and serves every site's active wrapper over HTTP, with
// hot-swap on promote/rollback (no restart), drift monitoring, admission
// control with backpressure, an asynchronous maintenance plane (learning
// and repair run as background jobs, never inside an HTTP request), and
// graceful drain on SIGTERM.
//
// Usage:
//
//	wrapserved -store wrappers.json -addr :8080
//	wrapserved -store wrappers.json -dict names.txt -kind xpath   # enables /v1/learn + /v1/repair
//	wrapserved -store wrappers.json -dict names.txt -auto-repair  # drifted sites heal themselves
//	wrapserved -store wrappers.json -shards 4                     # consistent-hash fleet, one per core
//	wrapserved -store wrappers.json -store-backend log            # append-only segmented-log durability
//	wrapserved -store wrappers.json -audit-log audit.jsonl        # tamper-evident lifecycle ledger
//	wrapserved -store wrappers.json -debug-addr localhost:6060    # net/http/pprof on a side listener
//
// Multi-process fleet (one shard per process, a forwarding front end):
//
//	wrapserved -role shard -shard-index 0 -shards 2 -store s0.json -addr :8081
//	wrapserved -role shard -shard-index 1 -shards 2 -store s1.json -addr :8082
//	wrapserved -role front -peers localhost:8081,localhost:8082 -addr :8080
//
// Offline audit verbs (no daemon; exit 0 intact, 4 tampered, 1 other):
//
//	wrapserved -audit-verify audit.jsonl
//	wrapserved -audit-export audit.jsonl   # verify + dump checkpoint roots
//
// Endpoints:
//
//	POST /v1/extract   {"site":"s","page":{"html":"..."}} or {"site":"s","pages":[...]}
//	GET  /healthz      liveness + readiness (503 while draining)
//	GET  /metrics      per-site QPS, latency quantiles, runtime health, gate + job counters
//	GET  /v1/sites     serving state of every site
//	POST /v1/promote   {"site":"s","version":2}
//	POST /v1/rollback  {"site":"s"}
//	POST /v1/learn     {"site":"s","pages":[html,...]} or {"site":"s","corpus_dir":"dir"}
//	                   → 202 {"job_id":...}; learns, validates, promotes, hot-swaps
//	                   (corpus_dir is confined under -learn-corpus-root and
//	                   rejected when that flag is unset)
//	POST /v1/repair    {"site":"s","pages":["<html>...",...]} → 202 {"job_id":...}
//	GET  /v1/jobs      every retained job; GET /v1/jobs/{id} one job
//	POST /v1/jobs/{id}/cancel
//	GET  /v1/audit     the lifecycle audit ledger's counters + newest records
//
// Durability is pluggable (-store-backend). The default, file, keeps the
// original format: one atomic JSON registry at -store, rewritten in full
// after every lifecycle mutation. With -store-backend=log the daemon
// appends one CRC-framed, fsync'd record per lifecycle event to a
// segmented log directory (-store-log-dir, default <store>.log) with
// snapshot rotation + compaction and torn-tail crash recovery; an empty
// log seeds itself from the JSON registry at -store once, so switching
// backends is one flag. With -audit-log PATH every lifecycle event
// (learn, candidate, promote, rollback, drift trip, auto-repair) is also
// recorded in a hash-chained, Merkle-checkpointed audit ledger whose
// integrity is verifiable offline (see GET /v1/audit).
//
// The hot path is admission-controlled: at most -max-inflight requests
// extract concurrently, at most -queue more wait, and everything beyond
// that is rejected immediately with 429 and a Retry-After header — the
// daemon sheds load instead of collapsing under it. Every request gets a
// deadline (-timeout, shortenable per request via timeout_ms).
//
// Learning and repair are maintenance-plane work: submissions enqueue onto
// a bounded job queue (-job-queue) drained by -learn-workers background
// workers, fully isolated from the extract pools — POST /v1/repair answers
// 202 in milliseconds even while the extract gate is saturated. /v1/learn
// and /v1/repair need an annotator to re-learn with; start the daemon with
// -dict (one dictionary entry per line) to enable them. Successful admin
// mutations (promote, rollback, finished learn/repair jobs) are persisted
// back to -store.
//
// With -auto-repair (requires -dict and monitoring), the daemon closes the
// maintenance loop autonomously: a drift trip enqueues a repair job that
// re-learns the site from its -recent-pages most recently served pages, at
// most once per -auto-repair-gap per site — a drifted site heals with no
// operator in the loop, and a repair that loses held-out validation leaves
// the incumbent serving.
//
// On SIGTERM or SIGINT the daemon flips /healthz to 503 (so load balancers
// drain it), finishes in-flight requests, then drains the job plane —
// queued jobs are canceled, the running job is given the remainder of
// -drain-timeout — and exits 0.
//
// With -shards N (> 1) the daemon runs a consistent-hash fleet instead of
// a single server: N complete serving stacks — store partition, gate,
// dispatcher, monitor, job plane, optional auto-repair — behind the one
// listener, each shard owning the sites the ring assigns it. All endpoints
// are unchanged; requests and lifecycle events route to the owning shard,
// /metrics aggregates across the fleet, and admin mutations persist the
// merged registry. -vnodes tunes the ring (must match across restarts for
// a stable assignment); size -shards to the host's cores. SIGTERM drains
// the fleet in order: healthz flip first, in-flight requests next, every
// shard's job queue run dry last (queued jobs complete rather than being
// canceled, up to -drain-timeout).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof/* on DefaultServeMux for -debug-addr
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"autowrap"
	"autowrap/internal/annotate"
	"autowrap/internal/audit"
	"autowrap/internal/drift"
	"autowrap/internal/engine"
	"autowrap/internal/experiments"
	"autowrap/internal/jobs"
	"autowrap/internal/serve"
	"autowrap/internal/shard"
	"autowrap/internal/store"
	"autowrap/internal/store/filestore"
	"autowrap/internal/store/logstore"
)

// options carries the parsed flag set.
type options struct {
	storePath    string
	storeBackend string
	storeLogDir  string
	auditLog     string

	addr        string
	workers     int
	maxInflight int
	queue       int
	retryAfter  time.Duration
	timeout     time.Duration
	maxPages    int
	window      int
	dictPath    string
	kind        string
	drainT      time.Duration

	learnWorkers int
	jobQueue     int
	corpusRoot   string
	recentPages  int
	autoRepair   bool
	autoInterval time.Duration
	autoGap      time.Duration

	shards int
	vnodes int

	role       string
	shardIndex int
	peers      string

	logSyncInterval time.Duration

	auditVerify string
	auditExport string

	debugAddr string
}

func main() {
	var o options
	flag.StringVar(&o.storePath, "store", "wrappers.json", "wrapper store path (required; must exist)")
	flag.StringVar(&o.storeBackend, "store-backend", "file", "durable store backend: file (atomic JSON registry) | log (append-only segmented log, O(event) persists)")
	flag.StringVar(&o.storeLogDir, "store-log-dir", "", "segment directory for -store-backend=log (default <store>.log; an empty log seeds itself from -store)")
	flag.StringVar(&o.auditLog, "audit-log", "", "append lifecycle events to a hash-chained audit ledger at this path (empty disables)")
	flag.StringVar(&o.addr, "addr", ":8080", "listen address")
	flag.IntVar(&o.workers, "workers", 0, "extraction workers per batch request (0 = GOMAXPROCS)")
	flag.IntVar(&o.maxInflight, "max-inflight", 64, "max concurrently executing extract requests")
	flag.IntVar(&o.queue, "queue", 0, "max extract requests waiting for a slot (0 = 4x max-inflight, negative disables queueing)")
	flag.DurationVar(&o.retryAfter, "retry-after", time.Second, "Retry-After hint attached to 429 responses")
	flag.DurationVar(&o.timeout, "timeout", 30*time.Second, "per-request extraction deadline")
	flag.IntVar(&o.maxPages, "max-pages", 256, "max pages per extract request")
	flag.IntVar(&o.window, "window", 32, "drift-monitor sliding window in pages (0 disables monitoring)")
	flag.StringVar(&o.dictPath, "dict", "", "dictionary file enabling /v1/learn and /v1/repair (one entry per line)")
	flag.StringVar(&o.kind, "kind", "xpath", "re-learn wrapper language for /v1/learn and /v1/repair: xpath | lr")
	flag.DurationVar(&o.drainT, "drain-timeout", 30*time.Second, "max time to wait for in-flight requests and running jobs on shutdown")
	flag.IntVar(&o.learnWorkers, "learn-workers", 1, "background learn/repair job workers (isolated from the extract pools)")
	flag.IntVar(&o.jobQueue, "job-queue", 16, "max queued learn/repair jobs before submissions get 429")
	flag.StringVar(&o.corpusRoot, "learn-corpus-root", "", "directory /v1/learn corpus_dir paths are confined to (empty disables corpus_dir)")
	flag.IntVar(&o.recentPages, "recent-pages", 64, "recently served pages cached per site as auto-repair fuel (only cached with -auto-repair; 0 disables)")
	flag.BoolVar(&o.autoRepair, "auto-repair", false, "auto-enqueue repair jobs when drift trips (needs -dict, -window > 0 and -recent-pages > 0)")
	flag.DurationVar(&o.autoInterval, "auto-repair-interval", 2*time.Second, "scan period for tripped sites the trip hook could not enqueue")
	flag.DurationVar(&o.autoGap, "auto-repair-gap", time.Minute, "per-site minimum time between auto-repair submissions")
	flag.IntVar(&o.shards, "shards", 1, "run a sharded fleet: N consistent-hash partitions, each with its own dispatcher, gate, monitor and job plane (1 = single unsharded server)")
	flag.IntVar(&o.vnodes, "vnodes", shard.DefaultVNodes, "virtual nodes per shard on the routing ring (must match across restarts)")
	flag.StringVar(&o.role, "role", "", "fleet role: empty (single process, optionally in-process sharded via -shards), shard (boot exactly partition -shard-index of an N=-shards ring) or front (forward to -peers, no local store)")
	flag.IntVar(&o.shardIndex, "shard-index", 0, "which ring partition this process owns (-role shard; 0 <= k < -shards)")
	flag.StringVar(&o.peers, "peers", "", "comma-separated host:port shard addresses, ring order (-role front; ring size = number of peers)")
	flag.DurationVar(&o.logSyncInterval, "store-log-sync-interval", 0, "group-commit fsync interval for -store-backend=log (0 = fsync every append; >0 trades a bounded loss window for throughput)")
	flag.StringVar(&o.auditVerify, "audit-verify", "", "verify the hash-chained audit ledger at this path and exit (0 intact, 4 tampered, 1 other)")
	flag.StringVar(&o.auditExport, "audit-export", "", "verify the ledger at this path, dump its Merkle checkpoint roots as JSON lines, and exit (same exit codes as -audit-verify)")
	flag.StringVar(&o.debugAddr, "debug-addr", "", "separate listen address serving net/http/pprof (e.g. localhost:6060); keep it off the public network")
	flag.Parse()
	if o.auditVerify != "" || o.auditExport != "" {
		os.Exit(runAuditVerb(o, os.Stdout, os.Stderr))
	}
	if err := run(o); err != nil {
		fmt.Fprintln(os.Stderr, "wrapserved:", err)
		os.Exit(1)
	}
}

// openBackend opens the durable store backend the flags select. The
// file backend keeps the original single-JSON-registry behaviour (and
// the original "store must exist" contract); the log backend opens (or
// creates) the segment directory, recovering a torn tail, and seeds an
// empty log from the JSON registry at -store when one exists.
func openBackend(o options, logger *log.Logger) (store.Backend, error) {
	switch o.storeBackend {
	case "file":
		if _, err := os.Stat(o.storePath); err != nil {
			return nil, fmt.Errorf("store %s: %w", o.storePath, err)
		}
		return filestore.Open(o.storePath)
	case "log":
		dir := o.storeLogDir
		if dir == "" {
			dir = o.storePath + ".log"
		}
		be, err := logstore.Open(dir, logstore.Options{SyncInterval: o.logSyncInterval})
		if err != nil {
			return nil, err
		}
		if rec := be.Recovered(); rec != nil {
			logger.Printf("store log %s: recovered torn tail (%s: %d byte(s) dropped at offset %d: %s)",
				dir, rec.Segment, rec.Dropped, rec.Offset, rec.Reason)
		}
		if be.Empty() {
			if _, err := os.Stat(o.storePath); err == nil {
				st, err := store.Load(o.storePath)
				if err != nil {
					be.Close()
					return nil, err
				}
				if err := be.SeedFrom(st); err != nil {
					be.Close()
					return nil, err
				}
				logger.Printf("store log %s: seeded from %s (%d site(s))", dir, o.storePath, st.Len())
			}
		}
		return be, nil
	default:
		return nil, fmt.Errorf("-store-backend %q: want file or log", o.storeBackend)
	}
}

// openLedger opens the audit ledger when -audit-log is set (nil ledger
// = auditing off; every ledger method is nil-safe).
func openLedger(o options, logger *log.Logger) (*audit.Ledger, error) {
	if o.auditLog == "" {
		return nil, nil
	}
	led, err := audit.Open(o.auditLog, audit.Options{})
	if err != nil {
		return nil, err
	}
	if n := led.RecoveredBytes(); n > 0 {
		logger.Printf("audit ledger %s: truncated %d torn byte(s) from the tail", o.auditLog, n)
	}
	return led, nil
}

func run(o options) error {
	logger := log.New(os.Stderr, "wrapserved: ", log.LstdFlags)
	switch o.role {
	case "":
		// Single process: standalone, or the whole fleet in-process.
	case "shard":
		return runShard(o, logger)
	case "front":
		return runFront(o, logger)
	default:
		return fmt.Errorf("-role %q: want shard, front or empty", o.role)
	}
	if o.shards > 1 {
		return runFleet(o, logger)
	}

	be, err := openBackend(o, logger)
	if err != nil {
		return err
	}
	defer be.Close()
	led, err := openLedger(o, logger)
	if err != nil {
		return err
	}
	defer led.Close()

	st, err := be.Load()
	if err != nil {
		return err
	}
	var mon *drift.Monitor
	if o.window > 0 {
		mon = drift.NewMonitor(drift.Policy{
			Window: o.window,
			OnTrip: func(site string, s drift.Stats) {
				logger.Printf("DRIFT TRIPPED: %s", s)
				if err := led.Append(0, audit.EventDriftTrip, site, 0, s.String()); err != nil {
					logger.Printf("audit drift trip %s: %v", site, err)
				}
			},
		})
	}
	// The recent-page ring exists to fuel auto-repair; without it nothing
	// reads the cache, so don't pay a copy per served page to fill it.
	recentPages := 0
	if o.autoRepair {
		recentPages = o.recentPages
	}
	dispatcher := serve.NewDispatcher(st, serve.Options{
		Workers: o.workers, Monitor: mon, RecentPages: recentPages,
	})

	var repairer *drift.Repairer
	if o.dictPath != "" {
		rep, err := newRepairer(st, mon, o.dictPath, o.kind)
		if err != nil {
			return err
		}
		repairer = rep
	}
	if o.autoRepair {
		switch {
		case repairer == nil:
			return fmt.Errorf("-auto-repair needs -dict (no annotator to re-learn with)")
		case mon == nil:
			return fmt.Errorf("-auto-repair needs drift monitoring (-window > 0)")
		case o.recentPages <= 0:
			return fmt.Errorf("-auto-repair needs -recent-pages > 0 (no cached pages to re-learn from)")
		}
	}

	var jobsM *jobs.Manager
	if repairer != nil {
		jobsM = jobs.New(jobs.Options{Workers: o.learnWorkers, QueueDepth: o.jobQueue})
	}
	srv, err := serve.NewServer(serve.ServerConfig{
		Dispatcher: dispatcher,
		Gate: serve.NewGate(serve.GateOptions{
			MaxInFlight: o.maxInflight, MaxQueue: o.queue, RetryAfter: o.retryAfter,
		}),
		RequestTimeout:  o.timeout,
		MaxPages:        o.maxPages,
		Repairer:        repairer,
		Jobs:            jobsM,
		LearnCorpusRoot: o.corpusRoot,
		Backend:         be,
		Audit:           led,
		Log:             logger,
	})
	if err != nil {
		return err
	}

	var maintainer *serve.Maintainer
	if o.autoRepair {
		maintainer, err = serve.NewMaintainer(srv, serve.MaintainerOptions{
			Interval: o.autoInterval,
			MinGap:   o.autoGap,
			Log:      logger,
		})
		if err != nil {
			return err
		}
		maintainer.Start()
		defer maintainer.Stop()
	}

	// The pprof endpoints live on their own listener: the production
	// handler's static route table never exposes /debug/pprof/*.
	if o.debugAddr != "" {
		go func() {
			logger.Printf("pprof debug server on http://%s/debug/pprof/", o.debugAddr)
			logger.Printf("pprof server: %v", http.ListenAndServe(o.debugAddr, nil))
		}()
	}

	hs := &http.Server{Addr: o.addr, Handler: srv.Handler()}
	errc := make(chan error, 1)
	go func() {
		logger.Printf("serving %d site(s) from %s on %s (maintenance plane %s, auto-repair %s)",
			st.Len(), o.storePath, o.addr, enabledWord(repairer != nil), enabledWord(o.autoRepair))
		if err := hs.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
			errc <- err
			return
		}
		errc <- nil
	}()

	// Graceful drain: flip readiness first so load balancers steer away,
	// let in-flight requests finish, then close the job plane — queued
	// jobs are canceled (they never started), running jobs get whatever
	// remains of the drain budget before being canceled mid-learn.
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGTERM, syscall.SIGINT)
	select {
	case err := <-errc:
		return err
	case sig := <-sigc:
		logger.Printf("%s: draining (up to %v)...", sig, o.drainT)
		srv.SetDraining(true)
		if maintainer != nil {
			maintainer.Stop() // no new auto jobs while draining
		}
		ctx, cancel := context.WithTimeout(context.Background(), o.drainT)
		defer cancel()
		if err := hs.Shutdown(ctx); err != nil {
			return fmt.Errorf("drain: %w", err)
		}
		if jobsM != nil {
			if err := jobsM.Drain(ctx); err != nil {
				logger.Printf("job drain: running job canceled at deadline: %v", err)
			}
		}
		logger.Printf("drained cleanly")
		return <-errc
	}
}

// newRepairer wires the maintenance plane's learn recipe for /v1/learn,
// /v1/repair and auto-repair: re-learn with a dictionary annotator over
// the fresh pages, in the configured wrapper language.
func newRepairer(st *store.Store, mon *drift.Monitor, dictPath, kind string) (*drift.Repairer, error) {
	annot, err := loadAnnotator(dictPath, kind)
	if err != nil {
		return nil, err
	}
	return makeRepairer(st, mon, annot, kind), nil
}

// loadAnnotator reads the dictionary and validates the wrapper kind once
// — a fleet builds N repairers from one annotator instead of re-reading
// the file per shard.
func loadAnnotator(dictPath, kind string) (annotate.Annotator, error) {
	entries, err := experiments.ReadDictFile(dictPath)
	if err != nil {
		return nil, err
	}
	if len(entries) == 0 {
		return nil, fmt.Errorf("dictionary %s is empty", dictPath)
	}
	if _, err := experiments.NewInductor(kind, autowrap.ParsePages([]string{"<p>probe</p>"})); err != nil {
		return nil, err
	}
	return autowrap.DictionaryAnnotator(filepath.Base(dictPath), entries), nil
}

// makeRepairer binds the shared annotator to one store + monitor pair —
// per shard in a fleet, once for the single-server path.
func makeRepairer(st *store.Store, mon *drift.Monitor, annot annotate.Annotator, kind string) *drift.Repairer {
	return &drift.Repairer{
		Store: st,
		Spec: func(site string, c *autowrap.Corpus) (engine.SiteSpec, error) {
			return engine.SiteSpec{
				Annotator: annot,
				NewInductor: func(c *autowrap.Corpus) (autowrap.Inductor, error) {
					return experiments.NewInductor(kind, c)
				},
				Config: autowrap.NewLearnConfig(autowrap.GenericModels(c), autowrap.Options{}),
			}, nil
		},
		Monitor: mon,
	}
}

// runFleet boots the sharded serving plane: a consistent-hash ring over
// -shards partitions, each with its own store partition (loaded with
// validation cost proportional to the partition, not the whole file),
// dispatcher, gate, drift monitor, job plane and optional auto-repair
// maintainer. One listener fronts them all through serve.ShardRouter;
// admin mutations persist the merged registry back to -store.
//
// Per-shard capacities multiply: -max-inflight, -queue, -learn-workers
// and -job-queue size each shard, so a 4-shard fleet admits 4x the
// single-server traffic.
func runFleet(o options, logger *log.Logger) error {
	ring := shard.NewRing(o.shards, o.vnodes)

	be, err := openBackend(o, logger)
	if err != nil {
		return err
	}
	defer be.Close()
	led, err := openLedger(o, logger)
	if err != nil {
		return err
	}
	defer led.Close()

	var annot annotate.Annotator
	if o.dictPath != "" {
		a, err := loadAnnotator(o.dictPath, o.kind)
		if err != nil {
			return err
		}
		annot = a
	}
	if o.autoRepair {
		switch {
		case annot == nil:
			return fmt.Errorf("-auto-repair needs -dict (no annotator to re-learn with)")
		case o.window <= 0:
			return fmt.Errorf("-auto-repair needs drift monitoring (-window > 0)")
		case o.recentPages <= 0:
			return fmt.Errorf("-auto-repair needs -recent-pages > 0 (no cached pages to re-learn from)")
		}
	}
	recentPages := 0
	if o.autoRepair {
		recentPages = o.recentPages
	}

	totalSites := 0
	router, err := serve.NewShardRouter(ring, func(k int) (*serve.Server, error) {
		st, err := be.LoadPartition(ring, k)
		if err != nil {
			return nil, err
		}
		totalSites += st.Len()
		var mon *drift.Monitor
		if o.window > 0 {
			mon = drift.NewMonitor(drift.Policy{
				Window: o.window,
				OnTrip: func(site string, s drift.Stats) {
					logger.Printf("DRIFT TRIPPED (shard %d): %s", k, s)
					if err := led.Append(k, audit.EventDriftTrip, site, 0, s.String()); err != nil {
						logger.Printf("audit drift trip %s: %v", site, err)
					}
				},
			})
		}
		dispatcher := serve.NewDispatcher(st, serve.Options{
			Workers: o.workers, Monitor: mon, RecentPages: recentPages,
		})
		var repairer *drift.Repairer
		var jobsM *jobs.Manager
		if annot != nil {
			repairer = makeRepairer(st, mon, annot, o.kind)
			jobsM = jobs.New(jobs.Options{
				Workers: o.learnWorkers, QueueDepth: o.jobQueue,
				IDPrefix: fmt.Sprintf("s%d-", k),
			})
		}
		return serve.NewServer(serve.ServerConfig{
			Dispatcher: dispatcher,
			Gate: serve.NewGate(serve.GateOptions{
				MaxInFlight: o.maxInflight, MaxQueue: o.queue, RetryAfter: o.retryAfter,
			}),
			RequestTimeout:  o.timeout,
			MaxPages:        o.maxPages,
			Repairer:        repairer,
			Jobs:            jobsM,
			LearnCorpusRoot: o.corpusRoot,
			Backend:         be, // shared; each shard reports only its own events
			Shard:           k,
			Audit:           led,
			Log:             logger,
		})
	})
	if err != nil {
		return err
	}

	var maintainers []*serve.Maintainer
	if o.autoRepair {
		for k := 0; k < o.shards; k++ {
			m, err := serve.NewMaintainer(router.Shard(k), serve.MaintainerOptions{
				Interval: o.autoInterval,
				MinGap:   o.autoGap,
				Log:      logger,
			})
			if err != nil {
				return err
			}
			m.Start()
			maintainers = append(maintainers, m)
		}
		defer func() {
			for _, m := range maintainers {
				m.Stop()
			}
		}()
	}

	if o.debugAddr != "" {
		go func() {
			logger.Printf("pprof debug server on http://%s/debug/pprof/", o.debugAddr)
			logger.Printf("pprof server: %v", http.ListenAndServe(o.debugAddr, nil))
		}()
	}

	hs := &http.Server{Addr: o.addr, Handler: router.Handler()}
	errc := make(chan error, 1)
	go func() {
		logger.Printf("serving %d site(s) from %s on %s across %d shards (%d vnodes each, maintenance plane %s, auto-repair %s)",
			totalSites, o.storePath, o.addr, o.shards, ring.VNodes(),
			enabledWord(annot != nil), enabledWord(o.autoRepair))
		if err := hs.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
			errc <- err
			return
		}
		errc <- nil
	}()

	// Fleet drain ordering: flip /healthz first (load balancers steer
	// away while every shard keeps admitting), stop the auto-repair
	// scanners, finish in-flight requests, then quiesce the job planes
	// last — queued jobs run to completion, nothing accepted is dropped.
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGTERM, syscall.SIGINT)
	select {
	case err := <-errc:
		return err
	case sig := <-sigc:
		logger.Printf("%s: draining %d shards (up to %v)...", sig, o.shards, o.drainT)
		router.SetDraining(true)
		for _, m := range maintainers {
			m.Stop()
		}
		ctx, cancel := context.WithTimeout(context.Background(), o.drainT)
		defer cancel()
		if err := hs.Shutdown(ctx); err != nil {
			return fmt.Errorf("drain: %w", err)
		}
		if err := router.Drain(ctx); err != nil {
			logger.Printf("job drain: remaining jobs canceled at deadline: %v", err)
		}
		logger.Printf("drained cleanly")
		return <-errc
	}
}

func enabledWord(b bool) string {
	if b {
		return "enabled"
	}
	return "disabled"
}
