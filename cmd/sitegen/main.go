// Command sitegen materializes the synthetic evaluation datasets as HTML
// files on disk, so the generated "websites" can be inspected in a browser
// or fed to other tools. Gold labels are written alongside as .gold.txt
// files (one value per line, per type).
//
// Usage:
//
//	sitegen -dataset dealers -sites 5 -out ./out
//	sitegen -dataset disc -out ./out
//	sitegen -dataset products -out ./out
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"autowrap/internal/dataset"
	"autowrap/internal/gen"
)

func main() {
	var (
		kind  = flag.String("dataset", "dealers", "dealers | disc | products")
		sites = flag.Int("sites", 5, "number of sites to write (dealers only; disc/products use paper scale)")
		out   = flag.String("out", "sitegen-out", "output directory")
		seed  = flag.Int64("seed", 0, "seed override (0 = dataset default)")
		drift = flag.Int("drift", 0, "template mutations per site (dealers only): same record data, mutated template — pair a -drift 0 run with a -drift N run to simulate sites changing under a learned wrapper")
	)
	flag.Parse()
	if err := run(*kind, *sites, *out, *seed, *drift); err != nil {
		fmt.Fprintln(os.Stderr, "sitegen:", err)
		os.Exit(1)
	}
}

func run(kind string, sites int, out string, seed int64, drift int) error {
	var ds *dataset.Dataset
	var err error
	if drift != 0 && kind != "dealers" {
		return fmt.Errorf("-drift is only supported for -dataset dealers")
	}
	switch kind {
	case "dealers":
		ds, err = dataset.Dealers(dataset.DealersOptions{NumSites: sites, Seed: seed, Drift: drift})
	case "disc":
		ds, err = dataset.Disc(dataset.DiscOptions{Seed: seed})
	case "products":
		ds, err = dataset.Products(dataset.ProductsOptions{Seed: seed})
	default:
		return fmt.Errorf("unknown dataset %q", kind)
	}
	if err != nil {
		return err
	}
	for _, site := range ds.Sites {
		dir := filepath.Join(out, ds.Name, site.Name)
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
		for pi, page := range site.Corpus.Pages {
			path := filepath.Join(dir, fmt.Sprintf("page-%03d.html", pi))
			if err := os.WriteFile(path, []byte(page.HTML), 0o644); err != nil {
				return err
			}
		}
		if err := writeGold(dir, site); err != nil {
			return err
		}
	}
	fmt.Printf("wrote %d sites of %s under %s\n", len(ds.Sites), ds.Name, out)
	fmt.Printf("dictionary: %d entries (annotator %q)\n", ds.Dict.Size(), ds.Annotator.Name())
	return nil
}

func writeGold(dir string, site *gen.Site) error {
	var types []string
	for typ := range site.Gold {
		types = append(types, typ)
	}
	sort.Strings(types)
	for _, typ := range types {
		var sb strings.Builder
		site.Gold[typ].ForEach(func(ord int) {
			fmt.Fprintf(&sb, "page %03d\t%s\n",
				site.Corpus.PageOf(ord), site.Corpus.TextContent(ord))
		})
		path := filepath.Join(dir, typ+".gold.txt")
		if err := os.WriteFile(path, []byte(sb.String()), 0o644); err != nil {
			return err
		}
	}
	return nil
}
