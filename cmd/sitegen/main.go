// Command sitegen materializes the synthetic evaluation datasets as HTML
// files on disk, so the generated "websites" can be inspected in a browser,
// fed to other tools, or replayed as serving traffic. Gold labels are
// written alongside as .gold.txt files (one value per line, per type).
//
// Usage:
//
//	sitegen -dataset dealers -sites 5 -out ./out
//	sitegen -dataset disc -sites 8 -out ./out
//	sitegen -dataset products -out ./out
//	sitegen -dataset dealers -sites 5 -drift 2 -out ./drifted
//
// -sites N sizes every dataset; 0 selects the paper's scale (330 dealers,
// 15 disc, 10 products). When the flag is not given, dealers defaults to 5
// sites and disc/products to their paper scale — the historical behavior.
// The output layout is one directory per site,
// out/DATASET/site-name/page-NNN.html — exactly what cmd/loadgen walks to
// build mixed-site replay traffic against a running wrapserved, so
//
//	sitegen -dataset dealers -sites 8 -out corpus
//	loadgen -corpus corpus -qps 50
//
// generates a realistic multi-site load. Pair a -drift 0 run with a
// -drift N run (dealers only) to also exercise the drift-repair path: same
// record data, mutated template.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"autowrap/internal/dataset"
	"autowrap/internal/gen"
)

func main() {
	var (
		kind  = flag.String("dataset", "dealers", "dealers | disc | products")
		sites = flag.Int("sites", 5, "number of sites to write (0 = the dataset's paper scale; when not set, dealers writes 5 and disc/products their paper scale)")
		out   = flag.String("out", "sitegen-out", "output directory")
		seed  = flag.Int64("seed", 0, "seed override (0 = dataset default)")
		drift = flag.Int("drift", 0, "template mutations per site (dealers only): same record data, mutated template — pair a -drift 0 run with a -drift N run to simulate sites changing under a learned wrapper")
	)
	flag.Parse()
	// An unset -sites keeps each dataset's historical default: 5 for
	// dealers (paper scale is a heavy 330), paper scale for disc/products.
	// An explicit -sites sizes any dataset, with 0 meaning paper scale.
	if *kind != "dealers" && !flagWasSet("sites") {
		*sites = 0
	}
	if err := run(*kind, *sites, *out, *seed, *drift); err != nil {
		fmt.Fprintln(os.Stderr, "sitegen:", err)
		os.Exit(1)
	}
}

func flagWasSet(name string) bool {
	set := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == name {
			set = true
		}
	})
	return set
}

func run(kind string, sites int, out string, seed int64, drift int) error {
	var ds *dataset.Dataset
	var err error
	if drift != 0 && kind != "dealers" {
		return fmt.Errorf("-drift is only supported for -dataset dealers")
	}
	switch kind {
	case "dealers":
		ds, err = dataset.Dealers(dataset.DealersOptions{NumSites: sites, Seed: seed, Drift: drift})
	case "disc":
		ds, err = dataset.Disc(dataset.DiscOptions{NumSites: sites, Seed: seed})
	case "products":
		ds, err = dataset.Products(dataset.ProductsOptions{NumSites: sites, Seed: seed})
	default:
		return fmt.Errorf("unknown dataset %q", kind)
	}
	if err != nil {
		return err
	}
	for _, site := range ds.Sites {
		dir := filepath.Join(out, ds.Name, site.Name)
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
		for pi, page := range site.Corpus.Pages {
			path := filepath.Join(dir, fmt.Sprintf("page-%03d.html", pi))
			if err := os.WriteFile(path, []byte(page.HTML), 0o644); err != nil {
				return err
			}
		}
		if err := writeGold(dir, site); err != nil {
			return err
		}
	}
	fmt.Printf("wrote %d sites of %s under %s\n", len(ds.Sites), ds.Name, out)
	fmt.Printf("dictionary: %d entries (annotator %q)\n", ds.Dict.Size(), ds.Annotator.Name())
	return nil
}

func writeGold(dir string, site *gen.Site) error {
	var types []string
	for typ := range site.Gold {
		types = append(types, typ)
	}
	sort.Strings(types)
	for _, typ := range types {
		var sb strings.Builder
		site.Gold[typ].ForEach(func(ord int) {
			fmt.Fprintf(&sb, "page %03d\t%s\n",
				site.Corpus.PageOf(ord), site.Corpus.TextContent(ord))
		})
		path := filepath.Join(dir, typ+".gold.txt")
		if err := os.WriteFile(path, []byte(sb.String()), 0o644); err != nil {
			return err
		}
	}
	return nil
}
