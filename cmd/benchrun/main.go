// Command benchrun regenerates every table and figure of the paper's
// evaluation (Sec. 7, Appendices A/B) at configurable scale and prints them
// in the paper's format. See DESIGN.md for the experiment index.
//
// Usage:
//
//	benchrun -list                    # enumerate experiment ids
//	benchrun -exp all                 # everything, reduced default scale
//	benchrun -exp fig2d -sites 330    # one experiment at paper scale
//	benchrun -exp table1 -sites 60
//	benchrun -exp batch -workers 8    # engine throughput over all sites
//
// Run benchrun -list for the experiment index (also in DESIGN.md): the
// paper's figures and tables plus the engine throughput demo.
//
// All multi-site experiments run on the internal/engine worker pool;
// -workers bounds it (0 = GOMAXPROCS).
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"autowrap/internal/dataset"
	"autowrap/internal/experiments"
)

func main() {
	var (
		exp     = flag.String("exp", "all", "experiment id (see -list)")
		list    = flag.Bool("list", false, "list all experiment ids with descriptions and exit")
		sites   = flag.Int("sites", 120, "number of DEALERS sites to generate (paper: 330)")
		pages   = flag.Int("pages", 0, "pages per DEALERS site (default 12; table1 uses 25)")
		workers = flag.Int("workers", 0, "parallel workers (0 = GOMAXPROCS)")
		rows    = flag.Int("rows", 20, "max per-site rows to print for enumeration figures")
		seed    = flag.Int64("seed", 0, "dataset seed override (0 = default)")
	)
	flag.Parse()
	if *list {
		listExperiments(os.Stdout)
		return
	}
	if err := run(*exp, *sites, *pages, *workers, *rows, *seed); err != nil {
		fmt.Fprintln(os.Stderr, "benchrun:", err)
		os.Exit(1)
	}
}

// experimentIndex maps every -exp id to its one-line description, in the
// order -list prints them (the paper's order, then the system demos).
var experimentIndex = []struct{ id, desc string }{
	{"fig2a", "Figure 2(a): # of wrapper induction calls for LR enumeration (DEALERS)"},
	{"fig2b", "Figure 2(b): # of wrapper induction calls for XPATH enumeration (DEALERS)"},
	{"fig2c", "Figure 2(c): running time of XPATH enumeration, TopDown vs BottomUp (DEALERS)"},
	{"fig2d", "Figure 2(d): extraction accuracy of XPATH, NTW vs NAIVE (DEALERS)"},
	{"fig2e", "Figure 2(e): extraction accuracy of LR, NTW vs NAIVE (DEALERS)"},
	{"fig2f", "Figure 2(f): extraction accuracy of XPATH on DISC"},
	{"fig2g", "Figure 2(g): extraction accuracy of LR on DISC"},
	{"fig2h", "Figure 2(h): ranking-component ablation NTW/NTW-L/NTW-X for XPATH (DEALERS)"},
	{"fig2i", "Figure 2(i): ranking-component ablation NTW/NTW-L/NTW-X for LR (DEALERS)"},
	{"table1", "Table 1: NTW accuracy over a controlled annotator precision/recall grid"},
	{"fig3a", "Figure 3(a): multi-type record extraction, NTW vs NAIVE (DEALERS)"},
	{"fig3b", "Figure 3(b): multi-type vs independent single-type extraction (DEALERS)"},
	{"fig3c", "Figure 3(c): extraction accuracy of XPATH on PRODUCTS"},
	{"b2", "Appendix B.2: single-entity (album title) extraction on DISC"},
	{"batch", "Engine demo: concurrent multi-site learning throughput (sites/sec, speedup)"},
	{"all", "every experiment above at the configured scale"},
}

func listExperiments(out *os.File) {
	fmt.Fprintln(out, "experiments (benchrun -exp <id>):")
	for _, e := range experimentIndex {
		fmt.Fprintf(out, "  %-8s %s\n", e.id, e.desc)
	}
}

func knownExperiment(id string) bool {
	for _, e := range experimentIndex {
		if e.id == id {
			return true
		}
	}
	return false
}

func run(exp string, sites, pages, workers, rows int, seed int64) error {
	if !knownExperiment(exp) {
		return fmt.Errorf("unknown experiment %q (run benchrun -list)", exp)
	}
	out := os.Stdout
	want := func(id string) bool { return exp == "all" || exp == id }
	start := time.Now()

	var dealers *dataset.Dataset
	needDealers := false
	for _, id := range []string{"fig2a", "fig2b", "fig2c", "fig2d", "fig2e", "fig2h", "fig2i", "fig3a", "fig3b", "batch"} {
		if want(id) {
			needDealers = true
		}
	}
	if needDealers {
		fmt.Fprintf(out, "building DEALERS (%d sites)...\n", sites)
		ds, err := dataset.Dealers(dataset.DealersOptions{NumSites: sites, NumPages: pages, Seed: seed})
		if err != nil {
			return err
		}
		dealers = ds
	}

	if want("fig2a") {
		experiments.Separator(out, "Figure 2(a): # of wrapper calls for LR")
		res, err := experiments.EnumExperiment(dealers, experiments.KindLR,
			experiments.EnumConfig{Workers: workers})
		if err != nil {
			return err
		}
		experiments.ReportEnum(out, res, rows)
	}
	if want("fig2b") || want("fig2c") {
		experiments.Separator(out, "Figures 2(b)/2(c): # of wrapper calls and running time for XPATH")
		res, err := experiments.EnumExperiment(dealers, experiments.KindXPath,
			experiments.EnumConfig{Workers: workers})
		if err != nil {
			return err
		}
		experiments.ReportEnum(out, res, rows)
	}
	if want("fig2d") {
		experiments.Separator(out, "Figure 2(d): accuracy of XPATH on DEALERS")
		res, err := experiments.AccuracyExperiment(dealers, experiments.KindXPath,
			experiments.AccuracyConfig{Workers: workers})
		if err != nil {
			return err
		}
		experiments.ReportAccuracy(out, res)
	}
	if want("fig2e") {
		experiments.Separator(out, "Figure 2(e): accuracy of LR on DEALERS")
		res, err := experiments.AccuracyExperiment(dealers, experiments.KindLR,
			experiments.AccuracyConfig{Workers: workers})
		if err != nil {
			return err
		}
		experiments.ReportAccuracy(out, res)
	}
	if want("fig2f") || want("fig2g") {
		disc, err := dataset.Disc(dataset.DiscOptions{})
		if err != nil {
			return err
		}
		if want("fig2f") {
			experiments.Separator(out, "Figure 2(f): accuracy of XPATH on DISC")
			res, err := experiments.AccuracyExperiment(disc, experiments.KindXPath,
				experiments.AccuracyConfig{Workers: workers})
			if err != nil {
				return err
			}
			experiments.ReportAccuracy(out, res)
		}
		if want("fig2g") {
			experiments.Separator(out, "Figure 2(g): accuracy of LR on DISC")
			res, err := experiments.AccuracyExperiment(disc, experiments.KindLR,
				experiments.AccuracyConfig{Workers: workers})
			if err != nil {
				return err
			}
			experiments.ReportAccuracy(out, res)
		}
	}
	if want("fig2h") {
		experiments.Separator(out, "Figure 2(h): XPATH ranking variants on DEALERS")
		res, err := experiments.VariantsExperiment(dealers, experiments.KindXPath,
			experiments.AccuracyConfig{Workers: workers})
		if err != nil {
			return err
		}
		experiments.ReportVariants(out, res)
	}
	if want("fig2i") {
		experiments.Separator(out, "Figure 2(i): LR ranking variants on DEALERS")
		res, err := experiments.VariantsExperiment(dealers, experiments.KindLR,
			experiments.AccuracyConfig{Workers: workers})
		if err != nil {
			return err
		}
		experiments.ReportVariants(out, res)
	}
	if want("table1") {
		experiments.Separator(out, "Table 1: NTW accuracy vs annotator precision/recall")
		n := sites
		if n > 60 {
			n = 60 // 25-page sites × 30 grid cells; keep the sweep tractable
		}
		t1ds, err := dataset.Dealers(dataset.DealersOptions{
			NumSites: n, NumPages: 25, Seed: seed,
		})
		if err != nil {
			return err
		}
		res, err := experiments.Table1Experiment(t1ds, experiments.Table1Config{Workers: workers})
		if err != nil {
			return err
		}
		experiments.ReportTable1(out, res)
	}
	if want("fig3a") || want("fig3b") {
		experiments.Separator(out, "Figures 3(a)/3(b): multi-type extraction on DEALERS")
		res, err := experiments.MultiTypeExperiment(dealers, experiments.MultiTypeConfig{Workers: workers})
		if err != nil {
			return err
		}
		experiments.ReportMultiType(out, res)
	}
	if want("fig3c") {
		experiments.Separator(out, "Figure 3(c): accuracy of XPath on PRODUCTS")
		prods, err := dataset.Products(dataset.ProductsOptions{})
		if err != nil {
			return err
		}
		res, err := experiments.AccuracyExperiment(prods, experiments.KindXPath,
			experiments.AccuracyConfig{Workers: workers})
		if err != nil {
			return err
		}
		experiments.ReportAccuracy(out, res)
	}
	if want("batch") {
		experiments.Separator(out, "Engine: concurrent multi-site learning over DEALERS")
		res, err := experiments.BatchExperiment(dealers, experiments.KindXPath,
			experiments.BatchConfig{Workers: workers})
		if err != nil {
			return err
		}
		experiments.ReportBatch(out, res)
	}
	if want("b2") {
		experiments.Separator(out, "Appendix B.2: single-entity extraction on DISC")
		disc, err := dataset.Disc(dataset.DiscOptions{})
		if err != nil {
			return err
		}
		res, err := experiments.SingleEntityExperiment(disc,
			dataset.DiscSeedTitles(dataset.DiscOptions{}),
			experiments.SingleEntityConfig{Workers: workers})
		if err != nil {
			return err
		}
		experiments.ReportSingleEntity(out, res)
	}

	fmt.Fprintf(out, "\ntotal time: %v\n", time.Since(start).Round(time.Millisecond))
	return nil
}
