// Command benchrun regenerates every table and figure of the paper's
// evaluation (Sec. 7, Appendices A/B) at configurable scale and prints them
// in the paper's format. See DESIGN.md for the experiment index.
//
// Usage:
//
//	benchrun -exp all                 # everything, reduced default scale
//	benchrun -exp fig2d -sites 330    # one experiment at paper scale
//	benchrun -exp table1 -sites 60
//	benchrun -exp batch -workers 8    # engine throughput over all sites
//
// Experiments: fig2a fig2b fig2c fig2d fig2e fig2f fig2g fig2h fig2i
// table1 fig3a fig3b fig3c b2 batch all. "batch" is the multi-site engine
// throughput demo (sites/sec, speedup, per-site failures); the rest map to
// the paper's tables and figures as indexed in DESIGN.md.
//
// All multi-site experiments run on the internal/engine worker pool;
// -workers bounds it (0 = GOMAXPROCS).
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"autowrap/internal/dataset"
	"autowrap/internal/experiments"
)

func main() {
	var (
		exp     = flag.String("exp", "all", "experiment id (fig2a..fig2i, table1, fig3a, fig3b, fig3c, b2, batch, all)")
		sites   = flag.Int("sites", 120, "number of DEALERS sites to generate (paper: 330)")
		pages   = flag.Int("pages", 0, "pages per DEALERS site (default 12; table1 uses 25)")
		workers = flag.Int("workers", 0, "parallel workers (0 = GOMAXPROCS)")
		rows    = flag.Int("rows", 20, "max per-site rows to print for enumeration figures")
		seed    = flag.Int64("seed", 0, "dataset seed override (0 = default)")
	)
	flag.Parse()
	if err := run(*exp, *sites, *pages, *workers, *rows, *seed); err != nil {
		fmt.Fprintln(os.Stderr, "benchrun:", err)
		os.Exit(1)
	}
}

var knownExperiments = map[string]bool{
	"all": true, "fig2a": true, "fig2b": true, "fig2c": true, "fig2d": true,
	"fig2e": true, "fig2f": true, "fig2g": true, "fig2h": true, "fig2i": true,
	"table1": true, "fig3a": true, "fig3b": true, "fig3c": true, "b2": true,
	"batch": true,
}

func run(exp string, sites, pages, workers, rows int, seed int64) error {
	if !knownExperiments[exp] {
		return fmt.Errorf("unknown experiment %q (see -h)", exp)
	}
	out := os.Stdout
	want := func(id string) bool { return exp == "all" || exp == id }
	start := time.Now()

	var dealers *dataset.Dataset
	needDealers := false
	for _, id := range []string{"fig2a", "fig2b", "fig2c", "fig2d", "fig2e", "fig2h", "fig2i", "fig3a", "fig3b", "batch"} {
		if want(id) {
			needDealers = true
		}
	}
	if needDealers {
		fmt.Fprintf(out, "building DEALERS (%d sites)...\n", sites)
		ds, err := dataset.Dealers(dataset.DealersOptions{NumSites: sites, NumPages: pages, Seed: seed})
		if err != nil {
			return err
		}
		dealers = ds
	}

	if want("fig2a") {
		experiments.Separator(out, "Figure 2(a): # of wrapper calls for LR")
		res, err := experiments.EnumExperiment(dealers, experiments.KindLR,
			experiments.EnumConfig{Workers: workers})
		if err != nil {
			return err
		}
		experiments.ReportEnum(out, res, rows)
	}
	if want("fig2b") || want("fig2c") {
		experiments.Separator(out, "Figures 2(b)/2(c): # of wrapper calls and running time for XPATH")
		res, err := experiments.EnumExperiment(dealers, experiments.KindXPath,
			experiments.EnumConfig{Workers: workers})
		if err != nil {
			return err
		}
		experiments.ReportEnum(out, res, rows)
	}
	if want("fig2d") {
		experiments.Separator(out, "Figure 2(d): accuracy of XPATH on DEALERS")
		res, err := experiments.AccuracyExperiment(dealers, experiments.KindXPath,
			experiments.AccuracyConfig{Workers: workers})
		if err != nil {
			return err
		}
		experiments.ReportAccuracy(out, res)
	}
	if want("fig2e") {
		experiments.Separator(out, "Figure 2(e): accuracy of LR on DEALERS")
		res, err := experiments.AccuracyExperiment(dealers, experiments.KindLR,
			experiments.AccuracyConfig{Workers: workers})
		if err != nil {
			return err
		}
		experiments.ReportAccuracy(out, res)
	}
	if want("fig2f") || want("fig2g") {
		disc, err := dataset.Disc(dataset.DiscOptions{})
		if err != nil {
			return err
		}
		if want("fig2f") {
			experiments.Separator(out, "Figure 2(f): accuracy of XPATH on DISC")
			res, err := experiments.AccuracyExperiment(disc, experiments.KindXPath,
				experiments.AccuracyConfig{Workers: workers})
			if err != nil {
				return err
			}
			experiments.ReportAccuracy(out, res)
		}
		if want("fig2g") {
			experiments.Separator(out, "Figure 2(g): accuracy of LR on DISC")
			res, err := experiments.AccuracyExperiment(disc, experiments.KindLR,
				experiments.AccuracyConfig{Workers: workers})
			if err != nil {
				return err
			}
			experiments.ReportAccuracy(out, res)
		}
	}
	if want("fig2h") {
		experiments.Separator(out, "Figure 2(h): XPATH ranking variants on DEALERS")
		res, err := experiments.VariantsExperiment(dealers, experiments.KindXPath,
			experiments.AccuracyConfig{Workers: workers})
		if err != nil {
			return err
		}
		experiments.ReportVariants(out, res)
	}
	if want("fig2i") {
		experiments.Separator(out, "Figure 2(i): LR ranking variants on DEALERS")
		res, err := experiments.VariantsExperiment(dealers, experiments.KindLR,
			experiments.AccuracyConfig{Workers: workers})
		if err != nil {
			return err
		}
		experiments.ReportVariants(out, res)
	}
	if want("table1") {
		experiments.Separator(out, "Table 1: NTW accuracy vs annotator precision/recall")
		n := sites
		if n > 60 {
			n = 60 // 25-page sites × 30 grid cells; keep the sweep tractable
		}
		t1ds, err := dataset.Dealers(dataset.DealersOptions{
			NumSites: n, NumPages: 25, Seed: seed,
		})
		if err != nil {
			return err
		}
		res, err := experiments.Table1Experiment(t1ds, experiments.Table1Config{Workers: workers})
		if err != nil {
			return err
		}
		experiments.ReportTable1(out, res)
	}
	if want("fig3a") || want("fig3b") {
		experiments.Separator(out, "Figures 3(a)/3(b): multi-type extraction on DEALERS")
		res, err := experiments.MultiTypeExperiment(dealers, experiments.MultiTypeConfig{Workers: workers})
		if err != nil {
			return err
		}
		experiments.ReportMultiType(out, res)
	}
	if want("fig3c") {
		experiments.Separator(out, "Figure 3(c): accuracy of XPath on PRODUCTS")
		prods, err := dataset.Products(dataset.ProductsOptions{})
		if err != nil {
			return err
		}
		res, err := experiments.AccuracyExperiment(prods, experiments.KindXPath,
			experiments.AccuracyConfig{Workers: workers})
		if err != nil {
			return err
		}
		experiments.ReportAccuracy(out, res)
	}
	if want("batch") {
		experiments.Separator(out, "Engine: concurrent multi-site learning over DEALERS")
		res, err := experiments.BatchExperiment(dealers, experiments.KindXPath,
			experiments.BatchConfig{Workers: workers})
		if err != nil {
			return err
		}
		experiments.ReportBatch(out, res)
	}
	if want("b2") {
		experiments.Separator(out, "Appendix B.2: single-entity extraction on DISC")
		disc, err := dataset.Disc(dataset.DiscOptions{})
		if err != nil {
			return err
		}
		res, err := experiments.SingleEntityExperiment(disc,
			dataset.DiscSeedTitles(dataset.DiscOptions{}),
			experiments.SingleEntityConfig{Workers: workers})
		if err != nil {
			return err
		}
		experiments.ReportSingleEntity(out, res)
	}

	fmt.Fprintf(out, "\ntotal time: %v\n", time.Since(start).Round(time.Millisecond))
	return nil
}
