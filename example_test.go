package autowrap_test

import (
	"fmt"

	"autowrap"
)

// The pages of one script-generated website: a dealer locator queried with
// two zipcodes. Structure repeats, data varies.
var examplePages = []string{
	`<html><body><div class="dealerlinks"><table>` +
		`<tr><td><u>PORTER FURNITURE</u><br>201 Hwy 30 West</td></tr>` +
		`<tr><td><u>WOODLAND FURNITURE</u><br>123 Main St</td></tr>` +
		`</table></div></body></html>`,
	`<html><body><div class="dealerlinks"><table>` +
		`<tr><td><u>ACME CHAIRS</u><br>9 Elm Ave</td></tr>` +
		`<tr><td><u>BEDS AND MORE</u><br>77 Oak Blvd</td></tr>` +
		`</table></div></body></html>`,
}

// Learn a wrapper from a noisy dictionary: one entry is a real dealer name,
// another ("Main") fires inside an address line. The framework still
// recovers the exact rule.
func ExampleLearn() {
	c := autowrap.ParsePages(examplePages)
	dict := autowrap.DictionaryAnnotator("known", []string{
		"Porter Furniture", "Beds and More", "Main",
	})
	labels := dict.Annotate(c)

	res, err := autowrap.Learn(autowrap.NewXPathInductor(c), labels,
		autowrap.GenericModels(c), autowrap.Options{})
	if err != nil {
		panic(err)
	}
	fmt.Println(res.Best.Wrapper.Rule())
	for p, vals := range autowrap.Extracted(c, res.Best.Wrapper) {
		fmt.Println(p, vals)
	}
	// Output:
	// //html[1]/body[1]/div[1][@class='dealerlinks']/table[1]/tr/td[1]/u[1]/text()
	// 0 [PORTER FURNITURE WOODLAND FURNITURE]
	// 1 [ACME CHAIRS BEDS AND MORE]
}

// The NAIVE baseline fits every label — including the wrong one — and
// over-generalizes, which is exactly why noise tolerance is needed.
func ExampleNaiveLearn() {
	c := autowrap.ParsePages(examplePages)
	dict := autowrap.DictionaryAnnotator("known", []string{
		"Porter Furniture", "Beds and More", "Main",
	})
	w, err := autowrap.NaiveLearn(autowrap.NewXPathInductor(c), dict.Annotate(c))
	if err != nil {
		panic(err)
	}
	fmt.Println(w.Extract().Count(), "nodes extracted (4 are correct)")
	// Output:
	// 8 nodes extracted (4 are correct)
}

// The LR (WIEN) wrapper language expresses the same rule as a pair of
// string delimiters over the serialized page.
func ExampleNewLRInductor() {
	c := autowrap.ParsePages(examplePages)
	dict := autowrap.DictionaryAnnotator("known", []string{
		"Porter Furniture", "Beds and More",
	})
	res, err := autowrap.Learn(autowrap.NewLRInductor(c, 0), dict.Annotate(c),
		autowrap.GenericModels(c), autowrap.Options{})
	if err != nil {
		panic(err)
	}
	fmt.Println(res.Best.Wrapper.Rule())
	// Output:
	// LR("><tr><td><u>", "</u><br>")
}
