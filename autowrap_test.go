package autowrap_test

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"autowrap"
)

func dealerPages(n int) []string {
	var pages []string
	k := 0
	for p := 0; p < n; p++ {
		var sb strings.Builder
		sb.WriteString(`<html><body><h1>Locator</h1><div class="results"><table>`)
		for i := 0; i < 3; i++ {
			k++
			fmt.Fprintf(&sb, `<tr><td><u>STORE %03d</u><br>%d Main St<br>CITY, MS</td></tr>`, k, k*7)
		}
		sb.WriteString(`</table></div></body></html>`)
		pages = append(pages, sb.String())
	}
	return pages
}

func TestParsePagesAndAnnotate(t *testing.T) {
	c := autowrap.ParsePages(dealerPages(3))
	if len(c.Pages) != 3 {
		t.Fatalf("pages = %d", len(c.Pages))
	}
	dict := autowrap.DictionaryAnnotator("d", []string{"STORE 001", "STORE 005"})
	labels := dict.Annotate(c)
	if labels.Count() != 2 {
		t.Fatalf("labels = %d", labels.Count())
	}
}

func TestLearnEndToEndViaFacade(t *testing.T) {
	c := autowrap.ParsePages(dealerPages(4))
	dict := autowrap.DictionaryAnnotator("d", []string{"STORE 002", "STORE 007", "14 Main"})
	labels := dict.Annotate(c)
	res, err := autowrap.Learn(autowrap.NewXPathInductor(c), labels,
		autowrap.GenericModels(c), autowrap.Options{})
	if err != nil {
		t.Fatal(err)
	}
	got := autowrap.Extracted(c, res.Best.Wrapper)
	total := 0
	for _, vals := range got {
		for _, v := range vals {
			if !strings.HasPrefix(v, "STORE") {
				t.Fatalf("extracted junk %q", v)
			}
			total++
		}
	}
	if total != 12 {
		t.Fatalf("extracted %d values, want 12 store names", total)
	}
	if !strings.HasSuffix(res.Best.Wrapper.Rule(), "/text()") {
		t.Fatalf("rule = %q", res.Best.Wrapper.Rule())
	}
}

func TestNaiveVsNTWViaFacade(t *testing.T) {
	c := autowrap.ParsePages(dealerPages(4))
	// One sparse noise label ("14 Main" matches a single street line), as
	// in the paper's low-noise regime.
	dict := autowrap.DictionaryAnnotator("d", []string{"STORE 002", "STORE 007", "14 Main"})
	labels := dict.Annotate(c)
	naive, err := autowrap.NaiveLearn(autowrap.NewXPathInductor(c), labels)
	if err != nil {
		t.Fatal(err)
	}
	res, err := autowrap.Learn(autowrap.NewXPathInductor(c), labels,
		autowrap.GenericModels(c), autowrap.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if naive.Extract().Count() <= res.Best.Wrapper.Extract().Count() {
		t.Fatalf("naive (%d) should over-generalize past NTW (%d)",
			naive.Extract().Count(), res.Best.Wrapper.Extract().Count())
	}
}

func TestLRInductorViaFacade(t *testing.T) {
	c := autowrap.ParsePages(dealerPages(4))
	dict := autowrap.DictionaryAnnotator("d", []string{"STORE 002", "STORE 007"})
	labels := dict.Annotate(c)
	res, err := autowrap.Learn(autowrap.NewLRInductor(c, 0), labels,
		autowrap.GenericModels(c), autowrap.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(res.Best.Wrapper.Rule(), "LR(") {
		t.Fatalf("rule = %q", res.Best.Wrapper.Rule())
	}
	if res.Best.Wrapper.Extract().Count() != 12 {
		t.Fatalf("extracted %d", res.Best.Wrapper.Extract().Count())
	}
}

func TestLearnModelsViaFacade(t *testing.T) {
	c := autowrap.ParsePages(dealerPages(4))
	gold := c.MatchingText(func(s string) bool { return strings.HasPrefix(s, "STORE") })
	dict := autowrap.DictionaryAnnotator("d", []string{"STORE 001", "STORE 004", "STORE 009"})
	m, err := autowrap.LearnModels(
		[]autowrap.TrainingSite{{Corpus: c, Gold: gold}}, dict, autowrap.ModelOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if m.Pub == nil {
		t.Fatal("publication model missing")
	}
	// r estimate: 3 of 12 gold labeled.
	if m.Ann.R < 0.2 || m.Ann.R > 0.3 {
		t.Fatalf("estimated r = %v", m.Ann.R)
	}
}

func TestEnumeratorOptionsViaFacade(t *testing.T) {
	c := autowrap.ParsePages(dealerPages(3))
	dict := autowrap.DictionaryAnnotator("d", []string{"STORE 002", "STORE 006"})
	labels := dict.Annotate(c)
	for _, algo := range []string{autowrap.EnumTopDown, autowrap.EnumBottomUp, autowrap.EnumNaive} {
		res, err := autowrap.Learn(autowrap.NewXPathInductor(c), labels,
			autowrap.GenericModels(c), autowrap.Options{Enumerator: algo})
		if err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
		if res.Best == nil {
			t.Fatalf("%s: no wrapper", algo)
		}
	}
}

func TestLearnSingleEntityViaFacade(t *testing.T) {
	var pages []string
	for _, title := range []string{"Abbey Road", "Quiet Dreams", "Paper Maps"} {
		pages = append(pages, fmt.Sprintf(
			`<html><head><title>%s | Site</title></head><body><h1>%s</h1><ol><li><a>t1</a></li><li><a>t2</a></li></ol></body></html>`,
			title, title))
	}
	c := autowrap.ParsePages(pages)
	labels := autowrap.DictionaryAnnotator("titles", []string{"Abbey Road", "Paper Maps"}).Annotate(c)
	res, err := autowrap.LearnSingleEntity(autowrap.NewXPathInductor(c), labels,
		autowrap.SingleEntityOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Winners) == 0 {
		t.Fatal("no winners")
	}
}

func TestLearnRecordsViaFacade(t *testing.T) {
	var pages []string
	k := 0
	for p := 0; p < 3; p++ {
		var sb strings.Builder
		sb.WriteString(`<html><body><div class="l">`)
		for i := 0; i < 2; i++ {
			k++
			fmt.Fprintf(&sb, `<div class="r"><u>STORE %03d</u><b>%05d</b></div>`, k, 10000+k)
		}
		sb.WriteString(`</div></body></html>`)
		pages = append(pages, sb.String())
	}
	c := autowrap.ParsePages(pages)
	zipAnnot, err := autowrap.RegexpAnnotator("zip", autowrap.ZipcodePattern)
	if err != nil {
		t.Fatal(err)
	}
	res, err := autowrap.LearnRecords(c, autowrap.GenericModels(c),
		autowrap.RecordType{Name: "name",
			Annotator: autowrap.DictionaryAnnotator("n", []string{"STORE 001", "STORE 004"})},
		autowrap.RecordType{Name: "zip", Annotator: zipAnnot, R: 0.9},
	)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records) != 6 {
		t.Fatalf("records = %d, want 6", len(res.Records))
	}
	for _, rec := range res.Records {
		if !strings.HasPrefix(rec[0], "STORE") || len(rec[1]) != 5 {
			t.Fatalf("bad record %v", rec)
		}
	}
}

func TestParseFiles(t *testing.T) {
	dir := t.TempDir()
	paths := make([]string, 2)
	for i, src := range dealerPages(2) {
		paths[i] = filepath.Join(dir, fmt.Sprintf("p%d.html", i))
		if err := os.WriteFile(paths[i], []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	c, err := autowrap.ParseFiles(paths)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Pages) != 2 {
		t.Fatalf("pages = %d", len(c.Pages))
	}
	if _, err := autowrap.ParseFiles([]string{filepath.Join(dir, "missing.html")}); err == nil {
		t.Fatal("expected error for missing file")
	}
}

func TestRegexpAnnotatorError(t *testing.T) {
	if _, err := autowrap.RegexpAnnotator("bad", "("); err == nil {
		t.Fatal("expected error")
	}
}
