// Acceptance tests for the wrapper-maintenance loop through the public
// facade: learn on clean generated pages, mutate the template, serve until
// the monitor trips, auto-relearn, and verify validated promotion with the
// old version one rollback away.
package autowrap_test

import (
	"context"
	"reflect"
	"strings"
	"testing"

	"autowrap"
	"autowrap/internal/dataset"
	"autowrap/internal/gen"
)

// maintPair builds one dealer site pristine and template-mutated (same
// record data).
func maintPair(t *testing.T) (clean, mutated *gen.Site, annot autowrap.Annotator) {
	t.Helper()
	opts := dataset.DealersOptions{NumSites: 1, NumPages: 16, Seed: 1001}
	ds, err := dataset.Dealers(opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.Drift = 2
	dsm, err := dataset.Dealers(opts)
	if err != nil {
		t.Fatal(err)
	}
	return ds.Sites[0], dsm.Sites[0], ds.Annotator
}

func TestMaintenanceLifecycleFacade(t *testing.T) {
	clean, mutated, annot := maintPair(t)
	ctx := context.Background()

	newInductor := func(c *autowrap.Corpus) (autowrap.Inductor, error) {
		return autowrap.NewXPathInductor(c), nil
	}
	config := autowrap.NewLearnConfig(autowrap.GenericModels(clean.Corpus), autowrap.Options{})

	// Learn + store + promote v1; StoreBatch records the learn-time
	// profile automatically.
	batch, err := autowrap.LearnBatch(ctx, []autowrap.BatchSite{{
		Name:        clean.Name,
		Corpus:      clean.Corpus,
		Annotator:   annot,
		NewInductor: newInductor,
		Config:      config,
	}}, autowrap.BatchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	st := autowrap.NewWrapperStore()
	if n, err := autowrap.StoreBatch(st, batch); n != 1 || err != nil {
		t.Fatalf("StoreBatch: n=%d err=%v", n, err)
	}
	v1, ok := st.Active(clean.Name)
	if !ok || v1.Profile == nil {
		t.Fatalf("active v1 = %+v, %v", v1, ok)
	}

	// Monitored serving of the mutated site trips.
	served, err := v1.Compile()
	if err != nil {
		t.Fatal(err)
	}
	monitor := autowrap.NewMonitor(autowrap.HealthPolicy{Window: 8, MinPages: 4})
	health := monitor.Register(clean.Name, v1.Profile)
	rt := autowrap.NewExtractor(served, autowrap.ExtractOptions{Workers: 4, OnResult: health.Observe})
	var pages []autowrap.ExtractPage
	var htmls []string
	for _, p := range mutated.Corpus.Pages {
		pages = append(pages, autowrap.ExtractPage{ID: clean.Name, HTML: p.HTML})
		htmls = append(htmls, p.HTML)
	}
	if _, err := rt.Run(ctx, pages); err != nil {
		t.Fatal(err)
	}
	if !health.Tripped() {
		t.Fatalf("mutated template did not trip: %s (runtime %+v)", health.Stats(), rt.Health())
	}
	if got := monitor.Tripped(); len(got) != 1 || got[0] != clean.Name {
		t.Fatalf("tripped sites = %v", got)
	}

	// Auto-relearn, validated promotion.
	rep := &autowrap.Repairer{
		Store: st,
		Spec: func(site string, c *autowrap.Corpus) (autowrap.BatchSite, error) {
			return autowrap.BatchSite{Annotator: annot, NewInductor: newInductor, Config: config}, nil
		},
		Monitor: monitor,
	}
	report, err := rep.Repair(ctx, clean.Name, htmls)
	if err != nil {
		t.Fatal(err)
	}
	if !report.Promoted {
		t.Fatalf("repair rejected: %s", report)
	}
	active, _ := st.Active(clean.Name)
	if active.Version != 2 {
		t.Fatalf("active = v%d", active.Version)
	}

	// The promoted wrapper extracts the mutated site's gold names.
	repaired, err := active.Compile()
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	for _, p := range mutated.Corpus.Pages {
		for _, n := range repaired.ApplyPage(p.Root) {
			got = append(got, strings.TrimSpace(n.Data))
		}
	}
	var want []string
	mutated.Gold["name"].ForEach(func(ord int) {
		want = append(want, strings.TrimSpace(mutated.Corpus.TextContent(ord)))
	})
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("repaired extraction: %d records, want %d gold", len(got), len(want))
	}

	// Rollback keeps working through the facade.
	if back, err := st.Rollback(clean.Name); err != nil || back.Version != 1 {
		t.Fatalf("rollback = %+v, %v", back, err)
	}
}
