// Products: extract the cellphones sold on a shopping site from a brand
// dictionary (the paper's PRODUCTS domain, Appendix B.1), and compare the
// XPATH and LR wrapper languages on the same labels.
//
//	go run ./examples/products
package main

import (
	"fmt"
	"log"
	"strings"

	"autowrap"
)

var phones = []struct{ name, price string }{
	{"Nokira X200", "$199.99"},
	{"Nokira Neo410", "$299.99"},
	{"Samsong Z150", "$149.99"},
	{"Samsong Pro880", "$499.99"},
	{"Motorix Lite330", "$99.99"},
	{"Motorix Max540", "$399.99"},
	{"Appelo Star700", "$649.99"},
	{"Zentel Flip120", "$79.99"},
	{"Huaron X930", "$329.99"},
}

// Dictionary: models of three brands only (recall < 1), plus an accessory
// promo mentions a model outside the listing (precision < 1).
var dictionary = []string{
	"Nokira X200", "Nokira Neo410", "Samsong Z150", "Samsong Pro880",
	"Motorix Lite330", "Motorix Max540",
}

func main() {
	pages := []string{
		renderPage(phones[:3], "Accessories for Appelo Star700 now 20% off!"),
		renderPage(phones[3:6], ""),
		renderPage(phones[6:], ""),
	}
	c := autowrap.ParsePages(pages)
	labels := autowrap.DictionaryAnnotator("models", dictionary).Annotate(c)
	fmt.Printf("dictionary labeled %d nodes\n\n", labels.Count())

	models := autowrap.GenericModels(c)
	for _, tc := range []struct {
		kind string
		ind  autowrap.Inductor
	}{
		{"XPATH", autowrap.NewXPathInductor(c)},
		{"LR", autowrap.NewLRInductor(c, 0)},
	} {
		res, err := autowrap.Learn(tc.ind, labels, models, autowrap.Options{})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s wrapper: %s\n", tc.kind, res.Best.Wrapper.Rule())
		var all []string
		for _, vals := range autowrap.Extracted(c, res.Best.Wrapper) {
			all = append(all, vals...)
		}
		fmt.Printf("  extracted %d items: %s\n\n", len(all), strings.Join(all, ", "))
	}
}

func renderPage(items []struct{ name, price string }, promo string) string {
	var sb strings.Builder
	sb.WriteString(`<html><body><div class="header"><h1>TigerShop — Cell Phones</h1></div><div class="main">`)
	if promo != "" {
		fmt.Fprintf(&sb, `<p class="promo">%s</p>`, promo)
	}
	sb.WriteString(`<table class="catalog">`)
	for _, it := range items {
		fmt.Fprintf(&sb, `<tr><td><b>%s</b></td><td>%s</td><td>In stock</td></tr>`, it.name, it.price)
	}
	sb.WriteString(`</table></div><div class="footer">© 2010 TigerShop</div></body></html>`)
	return sb.String()
}
