// Multitype: jointly extract (business name, zipcode) records from dealer
// pages — Appendix A of the paper. The name annotator is a dictionary, the
// zipcode annotator a regular expression; noise in either would break a
// naive per-type learner at record-assembly time.
//
//	go run ./examples/multitype
package main

import (
	"fmt"
	"log"
	"strings"

	"autowrap"
)

type listing struct{ name, street, cityState, zip string }

var listings = []listing{
	{"PORTER FURNITURE", "201 Hwy 30 West", "NEW ALBANY, MS", "38652"},
	{"HARMON LIGHTING CO", "10250 Oak Blvd", "DAYTON, OH", "45402"}, // 5-digit street number!
	{"KELLER BEDDING OUTLET", "7 Mill Rd", "SALEM, OR", "97301"},
	{"MERCER ANTIQUES", "15 Ridge Ave", "BRISTOL, TN", "37620"},
	{"NOLAN CARPETS INC", "940 Lake St", "TRENTON, NJ", "08601"},
	{"SUTTON KITCHENS", "33 Oak Park Dr", "MADISON, WI", "53703"},
}

func main() {
	pages := []string{
		renderPage(listings[:2]),
		renderPage(listings[2:4]),
		renderPage(listings[4:]),
	}
	c := autowrap.ParsePages(pages)

	nameAnnot := autowrap.DictionaryAnnotator("names", []string{
		"Porter Furniture", "Mercer Antiques", "Sutton Kitchens",
	})
	zipAnnot, err := autowrap.RegexpAnnotator("zipcode", autowrap.ZipcodePattern)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("name labels: %d, zipcode labels: %d (note the 5-digit street number noise)\n\n",
		nameAnnot.Annotate(c).Count(), zipAnnot.Annotate(c).Count())

	res, err := autowrap.LearnRecords(c, autowrap.GenericModels(c),
		autowrap.RecordType{Name: "name", Annotator: nameAnnot, P: 0.95, R: 0.5},
		autowrap.RecordType{Name: "zipcode", Annotator: zipAnnot, P: 0.98, R: 0.9},
	)
	if err != nil {
		log.Fatal(err)
	}
	for i, w := range res.Wrappers {
		fmt.Printf("wrapper %d: %s\n", i, w.Rule())
	}
	fmt.Printf("\nassembled records (%d pages failed assembly):\n", res.PagesFailed)
	for _, rec := range res.Records {
		fmt.Printf("  %-24s -> %s\n", rec[0], rec[1])
	}
}

func renderPage(items []listing) string {
	var sb strings.Builder
	sb.WriteString(`<html><body><div class="header"><h1>Store Locator</h1></div><div class="results">`)
	for _, l := range items {
		fmt.Fprintf(&sb,
			`<div class="item"><u>%s</u><div>%s</div><div>%s</div><b>%s</b><span>tel 555-0100</span></div>`,
			l.name, l.street, l.cityState, l.zip)
	}
	sb.WriteString(`</div><div class="footer">Ref 83121 — © 2010</div></body></html>`)
	return sb.String()
}
