// Dealers: the paper's running example at small scale — extract business
// listings from a store-locator site using a partial dictionary of business
// names, with model parameters learned from a site where gold labels are
// available.
//
//	go run ./examples/dealers
package main

import (
	"fmt"
	"log"
	"strings"

	"autowrap"
)

// A tiny "Yahoo! Local database": it covers only some of the businesses
// (low recall) and one entry collides with street text (imperfect
// precision).
var dictionary = []string{
	"HARMON LIGHTING CO", "KELLER BEDDING OUTLET", "MERCER ANTIQUES",
	"PORTER FURNITURE", "OAK", // "OAK" fires inside addresses -> noise
}

type biz struct{ name, street, city string }

var inventory = []biz{
	{"PORTER FURNITURE", "201 Hwy 30 West", "NEW ALBANY, MS 38652"},
	{"HARMON LIGHTING CO", "88 Oak Blvd", "DAYTON, OH 45402"},
	{"KELLER BEDDING OUTLET", "7 Mill Rd", "SALEM, OR 97301"},
	{"MERCER ANTIQUES", "15 Ridge Ave", "BRISTOL, TN 37620"},
	{"NOLAN CARPETS INC", "940 Lake St", "TRENTON, NJ 08601"},
	{"SUTTON KITCHENS", "33 Oak Park Dr", "MADISON, WI 53703"},
	{"VANCE HARDWARE", "512 Spring St", "CAMDEN, NJ 08102"},
	{"YATES CABINETS", "4 Forest Ln", "DOVER, DE 19901"},
}

func main() {
	// The "form-fill" loop: each queried zipcode yields one page listing a
	// slice of the inventory.
	var pages []string
	for i := 0; i < 4; i++ {
		pages = append(pages, renderPage(inventory[i*2:i*2+2]))
	}
	c := autowrap.ParsePages(pages)

	dict := autowrap.DictionaryAnnotator("local-db", dictionary)
	labels := dict.Annotate(c)
	fmt.Printf("dictionary labeled %d nodes across %d pages\n", labels.Count(), len(c.Pages))

	// Model learning: suppose we hand-labeled one training site (here: the
	// same layout with different records). The learned models transfer to
	// every site of the domain.
	trainCorpus, trainGold := trainingSite()
	models, err := autowrap.LearnModels(
		[]autowrap.TrainingSite{{Corpus: trainCorpus, Gold: trainGold}},
		dict, autowrap.ModelOptions{})
	if err != nil {
		log.Fatal(err)
	}

	ind := autowrap.NewXPathInductor(c)
	res, err := autowrap.Learn(ind, labels, models, autowrap.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("learned wrapper: %s\n", res.Best.Wrapper.Rule())
	fmt.Printf("score: logP(L|X)=%.2f  logP(X)=%.2f\n\n",
		res.Best.Score.LogL, res.Best.Score.LogX)

	fmt.Println("extracted business names:")
	for p, values := range autowrap.Extracted(c, res.Best.Wrapper) {
		fmt.Printf("  page %d: %s\n", p, strings.Join(values, " | "))
	}

	fmt.Println("\ntop of the ranked wrapper space:")
	for i, cand := range res.Candidates {
		if i == 4 {
			break
		}
		fmt.Printf("  %d. score=%8.2f  %s\n", i+1, cand.Score.Total, cand.Wrapper.Rule())
	}
}

func renderPage(listings []biz) string {
	var sb strings.Builder
	sb.WriteString(`<html><body><div class="header"><h1>Dealer Locator</h1>` +
		`<ul class="nav"><li><a href="#">Home</a></li><li><a href="#">Contact</a></li></ul></div>`)
	sb.WriteString(`<div class="results"><table>`)
	for _, b := range listings {
		fmt.Fprintf(&sb, `<tr><td><u>%s</u><br>%s<br>%s</td><td>Phone: 555-0100</td></tr>`,
			b.name, b.street, b.city)
	}
	sb.WriteString(`</table></div><div class="footer">© 2010</div></body></html>`)
	return sb.String()
}

// trainingSite builds a one-site training sample with known-good labels.
func trainingSite() (*autowrap.Corpus, *autowrap.NodeSet) {
	// Chain stores recur across sites, so the training site naturally
	// shares some dictionary entries — that overlap is what the (p, r)
	// estimate is learned from.
	train := []biz{
		{"HARMON LIGHTING CO", "12 Hill St", "UNION, NJ 07083"},
		{"DRAPER ELECTRONICS", "400 River Rd", "QUINCY, MA 02169"},
		{"MERCER ANTIQUES", "9 Meadow Ln", "EASTON, PA 18042"},
		{"ROWAN FURNISHINGS", "77 Oak Dr", "VERNON, CT 06066"},
	}
	pages := []string{renderPage(train[:2]), renderPage(train[2:])}
	c := autowrap.ParsePages(pages)
	gold := c.MatchingText(func(s string) bool {
		for _, b := range train {
			if s == b.name {
				return true
			}
		}
		return false
	})
	return c, gold
}
