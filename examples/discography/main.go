// Discography: extract track lists from album pages using a seed database
// of known albums (the paper's DISC setup), then learn a single-entity
// wrapper for the album title itself (Appendix B.2).
//
//	go run ./examples/discography
package main

import (
	"fmt"
	"log"
	"strings"

	"autowrap"
)

type album struct {
	title  string
	artist string
	tracks []string
}

var catalogue = []album{
	{"Abbey Road", "Beatles", []string{"Come Together", "Something", "Octopus Garden", "Here Comes the Sun"}},
	{"Midnight Horizons", "Delta Haze", []string{"Chasing the Sun", "Falling Stars", "The Quiet Tide", "Paper Maps"}},
	{"Silver Letters", "Clara Voss", []string{"Holding Tomorrow", "Burning the Wire", "My Shadow Knows"}},
	{"Velvet Seasons", "The Lanterns", []string{"Waiting for June", "Gravity Calls", "Winter Stories", "The Echo Room"}},
}

// The seed database: we know two albums and their tracks. Noise: "Come
// Together" also shows up in a user comment, and one album title equals a
// track name pattern.
var seedDB = []album{catalogue[0], catalogue[1]}

func main() {
	var pages []string
	for _, a := range catalogue {
		pages = append(pages, renderAlbumPage(a))
	}
	c := autowrap.ParsePages(pages)

	// --- Track extraction (list extraction) ---
	var trackDict []string
	for _, a := range seedDB {
		trackDict = append(trackDict, a.tracks...)
	}
	trackAnnot := autowrap.DictionaryAnnotator("seed-tracks", trackDict)
	labels := trackAnnot.Annotate(c)
	fmt.Printf("track annotator labeled %d nodes\n", labels.Count())

	res, err := autowrap.Learn(autowrap.NewXPathInductor(c), labels,
		autowrap.GenericModels(c), autowrap.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("track wrapper: %s\n", res.Best.Wrapper.Rule())
	for p, values := range autowrap.Extracted(c, res.Best.Wrapper) {
		fmt.Printf("  %-18s: %s\n", catalogue[p].title, strings.Join(values, " | "))
	}

	// --- Album-title extraction (single entity per page) ---
	var titleDict []string
	for _, a := range seedDB {
		titleDict = append(titleDict, a.title)
	}
	titleAnnot := autowrap.DictionaryAnnotator("seed-titles", titleDict)
	titleLabels := titleAnnot.Annotate(c)
	single, err := autowrap.LearnSingleEntity(autowrap.NewXPathInductor(c),
		titleLabels, autowrap.SingleEntityOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nalbum-title wrappers (%d tie%s, %d over-matching discarded):\n",
		len(single.Winners), plural(len(single.Winners)), single.Discarded)
	for _, w := range single.Winners {
		fmt.Printf("  %s\n", w.Wrapper.Rule())
		for p, vals := range autowrap.Extracted(c, w.Wrapper) {
			fmt.Printf("    page %d -> %v\n", p, vals)
		}
	}
}

func plural(n int) string {
	if n == 1 {
		return ""
	}
	return "s"
}

func renderAlbumPage(a album) string {
	var sb strings.Builder
	sb.WriteString(`<html><head><title>` + a.title + ` | MusicIsHere</title></head><body>`)
	sb.WriteString(`<div class="header"><h2>MusicIsHere</h2></div><div class="main">`)
	fmt.Fprintf(&sb, `<h1>%s</h1><div class="meta">%s</div>`, a.title, a.artist)
	sb.WriteString(`<ol class="tracklist">`)
	for i, tr := range a.tracks {
		fmt.Fprintf(&sb, `<li><a href="#">%s</a><span>%d:%02d</span></li>`, tr, 3+i%2, (i*17)%60)
	}
	sb.WriteString(`</ol></div>`)
	// A user comment quoting a track verbatim: annotation noise.
	if len(a.tracks) > 0 {
		fmt.Fprintf(&sb, `<div class="comments"><p>Love %s, best song ever!</p></div>`, a.tracks[0])
	}
	sb.WriteString(`<div class="footer">© 2010 MusicIsHere</div></body></html>`)
	return sb.String()
}
