#!/usr/bin/env bash
# Promote benchmarks/latest.txt to benchmarks/baseline.txt after review.
# Keep baseline and compare runs on the same machine/goos/goarch — the
# regression gate compares absolute ns/op.
set -euo pipefail
cd "$(dirname "$0")/.."

[ -f benchmarks/latest.txt ] || {
  echo "benchmarks/latest.txt missing; run scripts/bench.sh first" >&2
  exit 1
}
cp benchmarks/latest.txt benchmarks/baseline.txt
echo "promoted benchmarks/latest.txt -> benchmarks/baseline.txt"
