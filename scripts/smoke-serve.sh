#!/usr/bin/env bash
# CI smoke test for the serving daemon: generate a small multi-site corpus,
# learn a wrapper per site into a store, boot wrapserved, hit /healthz and
# /v1/extract, replay mixed-site load with loadgen (429 backpressure is
# fine, failed requests are not), and verify a clean SIGTERM drain.
#
#   SMOKE_PORT  listen port (default 8931)
set -euo pipefail
cd "$(dirname "$0")/.."

WORK="$(mktemp -d)"
SERVED_PID=""
cleanup() {
  if [ -n "$SERVED_PID" ]; then kill "$SERVED_PID" 2>/dev/null || true; fi
  rm -rf "$WORK"
}
trap cleanup EXIT

go build -o "$WORK" ./cmd/sitegen ./cmd/wrapserve ./cmd/wrapserved ./cmd/loadgen

# A 3-site corpus; each site's gold list doubles as a clean dictionary.
"$WORK/sitegen" -dataset dealers -sites 3 -out "$WORK/corpus" > /dev/null
site=""
for dir in "$WORK"/corpus/DEALERS/*/; do
  site="$(basename "$dir")"
  cut -f2 "$dir/name.gold.txt" | sort -u > "$WORK/dict-$site.txt"
  "$WORK/wrapserve" -learn -store "$WORK/wrappers.json" -site "$site" \
    -dict "$WORK/dict-$site.txt" "$dir"/page-*.html > /dev/null
done

ADDR="127.0.0.1:${SMOKE_PORT:-8931}"
"$WORK/wrapserved" -store "$WORK/wrappers.json" -addr "$ADDR" \
  -max-inflight 2 -queue 4 &> "$WORK/served.log" &
SERVED_PID=$!

healthy=""
for _ in $(seq 1 50); do
  if curl -fsS "http://$ADDR/healthz" > /dev/null 2>&1; then healthy=yes; break; fi
  sleep 0.2
done
if [ -z "$healthy" ]; then
  echo "smoke-serve: wrapserved never became healthy" >&2
  cat "$WORK/served.log" >&2
  exit 1
fi
echo "healthz: $(curl -fsS "http://$ADDR/healthz")"

# One explicit extraction over the wire must yield records.
page="$WORK/corpus/DEALERS/$site/page-000.html"
python3 - "$site" "$page" > "$WORK/req.json" <<'PY'
import json, sys
print(json.dumps({"site": sys.argv[1],
                  "page": {"id": "smoke", "html": open(sys.argv[2]).read()}}))
PY
curl -fsS -X POST --data-binary @"$WORK/req.json" "http://$ADDR/v1/extract" \
  | python3 -c 'import json,sys; d=json.load(sys.stdin); r=d["results"][0]["records"]; assert r, d; print("extract: %d records from v%d" % (len(r), d["version"]))'

# Mixed-site load through a deliberately tight gate. loadgen exits non-zero
# if any request fails (429 rejections are backpressure, not failures).
"$WORK/loadgen" -addr "http://$ADDR" -corpus "$WORK/corpus" \
  -qps 150 -duration 3s -concurrency 8 -batch 2

# Clean drain: SIGTERM must finish in-flight work and exit 0.
kill -TERM "$SERVED_PID"
wait "$SERVED_PID"
SERVED_PID=""
grep -q "drained cleanly" "$WORK/served.log" || {
  echo "smoke-serve: no clean-drain log line" >&2; cat "$WORK/served.log" >&2; exit 1;
}
echo "smoke-serve: OK (clean drain)"
