#!/usr/bin/env bash
# CI smoke test for the serving daemon: generate a small multi-site corpus,
# learn wrappers into a store (one site deliberately left out), boot
# wrapserved, hit /healthz and /v1/extract, drive the asynchronous
# maintenance plane (submit a learn job over HTTP for the left-out site,
# poll it to done, extract with the promoted wrapper), replay mixed
# extract+repair load with loadgen (429 backpressure is fine, failed
# requests are not), and verify a clean SIGTERM drain with a job still
# queued on the maintenance plane. Then reboot the same store as a
# 4-shard fleet (-shards 4) and check the sharded plane end to end:
# extract routes to the owning shard, a learn submitted over HTTP lands
# on the new site's owning shard (job-id prefix matches the shard stamp
# /v1/sites reports after promotion), loadgen's per-shard breakdown
# sees traffic, and SIGTERM drains the whole fleet cleanly.
#
# After the in-process phases: the offline audit verbs (-audit-verify /
# -audit-export and their documented exit codes: 0 intact, 4 tampered,
# 1 unreadable), then the multi-process fleet — two -role shard
# processes behind a -role front, asserting forwarded == direct
# extraction, learn routed to the owning shard process, partial
# availability after a shard is killed, and the ordered front-first
# drain.
#
#   SMOKE_PORT  listen port (default 8931; later phases use port+1..+5)
set -euo pipefail
cd "$(dirname "$0")/.."

WORK="$(mktemp -d)"
SERVED_PID=""
FLEET_PID=""
S0_PID=""
S1_PID=""
FRONT_PID=""
cleanup() {
  if [ -n "$SERVED_PID" ]; then kill "$SERVED_PID" 2>/dev/null || true; fi
  if [ -n "$FLEET_PID" ]; then kill "$FLEET_PID" 2>/dev/null || true; fi
  if [ -n "$FRONT_PID" ]; then kill "$FRONT_PID" 2>/dev/null || true; fi
  if [ -n "$S0_PID" ]; then kill -9 "$S0_PID" 2>/dev/null || true; fi
  if [ -n "$S1_PID" ]; then kill -9 "$S1_PID" 2>/dev/null || true; fi
  rm -rf "$WORK"
}
trap cleanup EXIT

go build -o "$WORK" ./cmd/sitegen ./cmd/wrapserve ./cmd/wrapserved ./cmd/loadgen

# A 4-site corpus; each site's gold list doubles as a clean dictionary.
# Learn the first two sites ahead of time; the third stays out of the
# store so the async /v1/learn path has a genuinely new site to learn,
# and the fourth is reserved for the fleet's learn-over-HTTP check.
"$WORK/sitegen" -dataset dealers -sites 4 -out "$WORK/corpus" > /dev/null
site=""
newsite=""
newdir=""
fleetsite=""
fleetdir=""
n=0
for dir in "$WORK"/corpus/DEALERS/*/; do
  name="$(basename "$dir")"
  cut -f2 "$dir/name.gold.txt" | sort -u >> "$WORK/dict-all.txt"
  n=$((n + 1))
  if [ "$n" -eq 3 ]; then
    newsite="$name"; newdir="$dir"
    continue
  fi
  if [ "$n" -eq 4 ]; then
    fleetsite="$name"; fleetdir="$dir"
    continue
  fi
  site="$name"
  "$WORK/wrapserve" -learn -store "$WORK/wrappers.json" -site "$name" \
    -dict <(cut -f2 "$dir/name.gold.txt" | sort -u) "$dir"/page-*.html > /dev/null
done
sort -u "$WORK/dict-all.txt" -o "$WORK/dict-all.txt"

ADDR="127.0.0.1:${SMOKE_PORT:-8931}"
"$WORK/wrapserved" -store "$WORK/wrappers.json" -addr "$ADDR" \
  -max-inflight 2 -queue 4 -dict "$WORK/dict-all.txt" \
  -learn-workers 1 -job-queue 8 -learn-corpus-root "$WORK/corpus" &> "$WORK/served.log" &
SERVED_PID=$!

healthy=""
for _ in $(seq 1 50); do
  if curl -fsS "http://$ADDR/healthz" > /dev/null 2>&1; then healthy=yes; break; fi
  sleep 0.2
done
if [ -z "$healthy" ]; then
  echo "smoke-serve: wrapserved never became healthy" >&2
  cat "$WORK/served.log" >&2
  exit 1
fi
echo "healthz: $(curl -fsS "http://$ADDR/healthz")"

# One explicit extraction over the wire must yield records.
page="$WORK/corpus/DEALERS/$site/page-000.html"
python3 - "$site" "$page" > "$WORK/req.json" <<'PY'
import json, sys
print(json.dumps({"site": sys.argv[1],
                  "page": {"id": "smoke", "html": open(sys.argv[2]).read()}}))
PY
curl -fsS -X POST --data-binary @"$WORK/req.json" "http://$ADDR/v1/extract" \
  | python3 -c 'import json,sys; d=json.load(sys.stdin); r=d["results"][0]["records"]; assert r, d; print("extract: %d records from v%d" % (len(r), d["version"]))'

# --- Asynchronous maintenance plane ---
# corpus_dir outside -learn-corpus-root must be rejected outright.
code="$(curl -s -o /dev/null -w '%{http_code}' -X POST \
  -d "{\"site\":\"evil\",\"corpus_dir\":\"/etc\"}" "http://$ADDR/v1/learn")"
if [ "$code" != "403" ]; then
  echo "smoke-serve: corpus_dir escape answered $code, want 403" >&2
  exit 1
fi
echo "corpus_dir confinement: 403 outside root"

# Submit a learn job for the never-learned site by server-side corpus
# path (under the configured root): 202 + job id immediately.
JOB_ID="$(curl -fsS -X POST -d "{\"site\":\"$newsite\",\"corpus_dir\":\"$newdir\"}" \
  "http://$ADDR/v1/learn" \
  | python3 -c 'import json,sys; d=json.load(sys.stdin); assert d["state"] in ("queued","running"), d; print(d["job_id"])')"
echo "learn job accepted: $JOB_ID for $newsite"

# Poll the job to done.
state=""
for _ in $(seq 1 100); do
  state="$(curl -fsS "http://$ADDR/v1/jobs/$JOB_ID" \
    | python3 -c 'import json,sys; print(json.load(sys.stdin)["state"])')"
  case "$state" in
    done) break ;;
    failed|canceled)
      echo "smoke-serve: learn job ended $state" >&2
      curl -fsS "http://$ADDR/v1/jobs/$JOB_ID" >&2 || true
      exit 1 ;;
  esac
  sleep 0.2
done
if [ "$state" != "done" ]; then
  echo "smoke-serve: learn job stuck in state $state" >&2
  exit 1
fi
curl -fsS "http://$ADDR/v1/jobs/$JOB_ID" \
  | python3 -c 'import json,sys; d=json.load(sys.stdin); r=d["result"]; assert r["promoted"], d; print("learn job done: %s promoted v%d in %dms" % (d["site"], r["serving_version"], d["run_ms"]))'

# The freshly learned site must now extract over the wire.
page="$newdir/page-000.html"
python3 - "$newsite" "$page" > "$WORK/req2.json" <<'PY'
import json, sys
print(json.dumps({"site": sys.argv[1],
                  "page": {"id": "smoke-learned", "html": open(sys.argv[2]).read()}}))
PY
curl -fsS -X POST --data-binary @"$WORK/req2.json" "http://$ADDR/v1/extract" \
  | python3 -c 'import json,sys; d=json.load(sys.stdin); r=d["results"][0]["records"]; assert r, d; print("extract from learned site: %d records from v%d" % (len(r), d["version"]))'

# Mixed-site load through a deliberately tight gate, with async repair
# jobs submitted alongside (the mixed maintenance scenario). loadgen
# exits non-zero if any request fails (429 rejections are backpressure,
# not failures; repair 202s are accepted).
"$WORK/loadgen" -addr "http://$ADDR" -corpus "$WORK/corpus" \
  -qps 150 -duration 3s -concurrency 8 -batch 2 \
  -repair-every 1s -repair-pages 6 | tee "$WORK/loadgen.log"
achieved="$(grep -oE 'achieved [0-9.]+' "$WORK/loadgen.log" | head -1 | cut -d' ' -f2)"
echo "smoke-serve: loadgen achieved-QPS = ${achieved:-unknown} (target 150)"

# --- Malformed-body chaos storm ---
# Every hostile body must die at the front door with a 4xx: never a
# connection reset (000), never a 5xx, and the daemon must stay healthy
# and keep a parseable /metrics afterwards.
malformed=(
  ''
  '{'
  '{"site":"x"'
  '{"site":42}'
  '{"site":"x","timeout_ms":"fast"}'
  '{"site":"x","pages":{"html":"h"}}'
  '{"site":"x"} trailing'
  '{"num":01,"site":"x"}'
  '["not an object"]'
  'null null'
  '{"site":"bad\escape"}'
  "$(printf '{"site":"\x01\xff"}')"
)
for body in "${malformed[@]}"; do
  code="$(curl -s -o /dev/null -w '%{http_code}' -X POST \
    --data-binary "$body" "http://$ADDR/v1/extract")"
  case "$code" in
    4??) ;;
    *)
      echo "smoke-serve: malformed body $(printf '%q' "$body") answered $code, want 4xx" >&2
      exit 1 ;;
  esac
done
curl -fsS "http://$ADDR/healthz" > /dev/null
curl -fsS "http://$ADDR/metrics" \
  | python3 -c 'import json,sys; d=json.load(sys.stdin); assert d["gate"]["in_flight"] == 0, d'
echo "smoke-serve: malformed-body storm all 4xx, daemon healthy"

# Clean drain with a queued job: stack two repair submissions (one runs,
# one queues behind the single learn worker), then SIGTERM. The daemon
# must cancel the queued job, wait out the running one, and exit 0.
pages_json="$(python3 - "$newdir" <<'PY'
import glob, json, sys
pages = [open(p).read() for p in sorted(glob.glob(sys.argv[1] + "/page-*.html"))[:6]]
print(json.dumps(pages))
PY
)"
for i in 1 2; do
  printf '{"site":"%s","pages":%s}' "$newsite" "$pages_json" > "$WORK/repair.json"
  curl -fsS -X POST --data-binary @"$WORK/repair.json" "http://$ADDR/v1/repair" \
    | python3 -c 'import json,sys; d=json.load(sys.stdin); print("repair job %s: %s" % (d["job_id"], d["state"]))'
done
kill -TERM "$SERVED_PID"
wait "$SERVED_PID"
SERVED_PID=""
grep -q "drained cleanly" "$WORK/served.log" || {
  echo "smoke-serve: no clean-drain log line" >&2; cat "$WORK/served.log" >&2; exit 1;
}
echo "smoke-serve: single-server OK (async learn + mixed load + clean drain with queued job)"

# --- Sharded fleet (-shards 4) over the same store ---
# The single-server phase persisted its learned site, so the fleet boots
# serving 3 sites partitioned across 4 shards from one registry file.
FLEET_ADDR="127.0.0.1:$((${SMOKE_PORT:-8931} + 1))"
"$WORK/wrapserved" -store "$WORK/wrappers.json" -addr "$FLEET_ADDR" -shards 4 \
  -max-inflight 2 -queue 4 -dict "$WORK/dict-all.txt" \
  -learn-workers 1 -job-queue 8 -learn-corpus-root "$WORK/corpus" &> "$WORK/fleet.log" &
FLEET_PID=$!

healthy=""
for _ in $(seq 1 50); do
  if curl -fsS "http://$FLEET_ADDR/healthz" > /dev/null 2>&1; then healthy=yes; break; fi
  sleep 0.2
done
if [ -z "$healthy" ]; then
  echo "smoke-serve: fleet never became healthy" >&2
  cat "$WORK/fleet.log" >&2
  exit 1
fi
curl -fsS "http://$FLEET_ADDR/healthz" \
  | python3 -c 'import json,sys; d=json.load(sys.stdin); assert d["shards"] == 4, d; print("fleet healthz: %d shards, %d sites" % (d["shards"], d["sites"]))'

# Extraction through the fleet front end must route to the owning shard
# and still yield records.
curl -fsS -X POST --data-binary @"$WORK/req.json" "http://$FLEET_ADDR/v1/extract" \
  | python3 -c 'import json,sys; d=json.load(sys.stdin); r=d["results"][0]["records"]; assert r, d; print("fleet extract: %d records from v%d" % (len(r), d["version"]))'

# Learn the reserved 4th site over HTTP. The fleet routes the job to the
# site's owning shard; the job id carries that shard's s<k>- prefix.
FLEET_JOB="$(curl -fsS -X POST -d "{\"site\":\"$fleetsite\",\"corpus_dir\":\"$fleetdir\"}" \
  "http://$FLEET_ADDR/v1/learn" \
  | python3 -c 'import json,sys; d=json.load(sys.stdin); assert d["state"] in ("queued","running"), d; print(d["job_id"])')"
job_shard="${FLEET_JOB%%-*}"; job_shard="${job_shard#s}"
echo "fleet learn job accepted: $FLEET_JOB (shard $job_shard) for $fleetsite"

state=""
for _ in $(seq 1 100); do
  state="$(curl -fsS "http://$FLEET_ADDR/v1/jobs/$FLEET_JOB" \
    | python3 -c 'import json,sys; print(json.load(sys.stdin)["state"])')"
  case "$state" in
    done) break ;;
    failed|canceled)
      echo "smoke-serve: fleet learn job ended $state" >&2
      curl -fsS "http://$FLEET_ADDR/v1/jobs/$FLEET_JOB" >&2 || true
      exit 1 ;;
  esac
  sleep 0.2
done
if [ "$state" != "done" ]; then
  echo "smoke-serve: fleet learn job stuck in state $state" >&2
  exit 1
fi

# The promoted site's shard stamp in /v1/sites must match the shard that
# ran the learn — the job landed on the ring's owner, nowhere else.
owner="$(curl -fsS "http://$FLEET_ADDR/v1/sites" \
  | python3 -c "import json,sys; sites=json.load(sys.stdin); print([s['shard'] for s in sites if s['site'] == '$fleetsite'][0])")"
if [ "$owner" != "$job_shard" ]; then
  echo "smoke-serve: learn ran on shard $job_shard but ring owner is $owner" >&2
  exit 1
fi
echo "fleet learn landed on owning shard $owner"

# The freshly learned site extracts through the fleet.
page="$fleetdir/page-000.html"
python3 - "$fleetsite" "$page" > "$WORK/req3.json" <<'PY'
import json, sys
print(json.dumps({"site": sys.argv[1],
                  "page": {"id": "smoke-fleet", "html": open(sys.argv[2]).read()}}))
PY
curl -fsS -X POST --data-binary @"$WORK/req3.json" "http://$FLEET_ADDR/v1/extract" \
  | python3 -c 'import json,sys; d=json.load(sys.stdin); r=d["results"][0]["records"]; assert r, d; print("fleet extract from learned site: %d records from v%d" % (len(r), d["version"]))'

# Mixed-site load against the fleet; the report's per-shard breakdown
# proves traffic reached more than one partition.
"$WORK/loadgen" -addr "http://$FLEET_ADDR" -corpus "$WORK/corpus" \
  -qps 100 -duration 2s -concurrency 8 | tee "$WORK/loadgen-fleet.log"
grep -q "per shard" "$WORK/loadgen-fleet.log" || {
  echo "smoke-serve: loadgen saw no per-shard breakdown against the fleet" >&2
  exit 1
}

# Clean fleet drain: SIGTERM must flip /healthz, finish in-flight work,
# quiesce every shard's job plane and exit 0.
kill -TERM "$FLEET_PID"
wait "$FLEET_PID"
FLEET_PID=""
grep -q "drained cleanly" "$WORK/fleet.log" || {
  echo "smoke-serve: no fleet clean-drain log line" >&2; cat "$WORK/fleet.log" >&2; exit 1;
}
echo "smoke-serve: fleet OK (learn on owning shard, per-shard load, clean drain)"

# --- Segmented-log backend + audit ledger ---
# Boot the same registry on the append-only log backend (auto-seeded from
# the JSON store) with the lifecycle audit ledger on. A learn for an
# already-served site appends v2 to the LOG ONLY; a reboot must replay it,
# proving durability now lives in the log, and /v1/audit must expose the
# chained learn/promote events.
LOG_ADDR="127.0.0.1:$((${SMOKE_PORT:-8931} + 2))"
boot_log_backend() {
  "$WORK/wrapserved" -store "$WORK/wrappers.json" -addr "$LOG_ADDR" \
    -store-backend log -store-log-dir "$WORK/wrappers.log" \
    -audit-log "$WORK/audit.jsonl" \
    -max-inflight 2 -queue 4 -dict "$WORK/dict-all.txt" \
    -learn-workers 1 -job-queue 8 -learn-corpus-root "$WORK/corpus" &>> "$WORK/logback.log" &
  SERVED_PID=$!
  healthy=""
  for _ in $(seq 1 50); do
    if curl -fsS "http://$LOG_ADDR/healthz" > /dev/null 2>&1; then healthy=yes; break; fi
    sleep 0.2
  done
  if [ -z "$healthy" ]; then
    echo "smoke-serve: log-backend wrapserved never became healthy" >&2
    cat "$WORK/logback.log" >&2
    exit 1
  fi
}
boot_log_backend

LOG_JOB="$(curl -fsS -X POST -d "{\"site\":\"$site\",\"corpus_dir\":\"$WORK/corpus/DEALERS/$site\"}" \
  "http://$LOG_ADDR/v1/learn" \
  | python3 -c 'import json,sys; d=json.load(sys.stdin); assert d["state"] in ("queued","running"), d; print(d["job_id"])')"
state=""
for _ in $(seq 1 100); do
  state="$(curl -fsS "http://$LOG_ADDR/v1/jobs/$LOG_JOB" \
    | python3 -c 'import json,sys; print(json.load(sys.stdin)["state"])')"
  [ "$state" = "done" ] && break
  case "$state" in failed|canceled)
    echo "smoke-serve: log-backend learn job ended $state" >&2; exit 1 ;; esac
  sleep 0.2
done
if [ "$state" != "done" ]; then
  echo "smoke-serve: log-backend learn job stuck in state $state" >&2
  exit 1
fi

# Relearning an existing site stages a candidate; promote it explicitly —
# the admin promote persists through the log backend and hits the ledger.
curl -fsS -X POST -d "{\"site\":\"$site\",\"version\":2}" "http://$LOG_ADDR/v1/promote" \
  | python3 -c 'import json,sys; d=json.load(sys.stdin); assert d["serving_version"] == 2, d; print("promoted %s to v2 on the log backend" % d["site"])'

# The ledger saw the lifecycle and /metrics carries its counters.
curl -fsS "http://$LOG_ADDR/v1/audit" \
  | python3 -c 'import json,sys; d=json.load(sys.stdin); assert d["enabled"], d; ev={r["event"] for r in d["records"]}; assert "promote" in ev, ev; print("audit: %d chained events (%s)" % (d["stats"]["events"], ", ".join(sorted(ev))))'
curl -fsS "http://$LOG_ADDR/metrics" \
  | python3 -c 'import json,sys; d=json.load(sys.stdin); assert d["audit"]["events"] >= 1, d'

kill -TERM "$SERVED_PID"; wait "$SERVED_PID"; SERVED_PID=""

# Reboot: the learned v2 exists only in the segmented log; replay must
# serve it, and the audit chain must pick up where it left off.
boot_log_backend
curl -fsS "http://$LOG_ADDR/v1/sites" \
  | python3 -c "
import json, sys
sites = json.load(sys.stdin)
v = [s['active_version'] for s in sites if s['site'] == '$site'][0]
assert v >= 2, 'log replay lost the learned version: v%d' % v
print('log replay serves $site at v%d' % v)"
curl -fsS -X POST --data-binary @"$WORK/req.json" "http://$LOG_ADDR/v1/extract" \
  | python3 -c 'import json,sys; d=json.load(sys.stdin); r=d["results"][0]["records"]; assert r, d; print("log-backend extract after reboot: %d records from v%d" % (len(r), d["version"]))'
curl -fsS "http://$LOG_ADDR/v1/audit" \
  | python3 -c 'import json,sys; d=json.load(sys.stdin); assert d["enabled"] and d["stats"]["last_seq"] >= 1, d'
kill -TERM "$SERVED_PID"; wait "$SERVED_PID"; SERVED_PID=""
grep -q "drained cleanly" "$WORK/logback.log" || {
  echo "smoke-serve: no log-backend clean-drain log line" >&2; cat "$WORK/logback.log" >&2; exit 1;
}

# --- Offline audit verbs + exit codes ---
# -audit-verify must pass the ledger the log-backend phase wrote (exit 0),
# -audit-export must dump its Merkle checkpoint anchors (exit 0), a
# flipped byte must be caught as tampering (exit 4, not a generic 1),
# and a missing file is an ordinary error (exit 1).
"$WORK/wrapserved" -audit-verify "$WORK/audit.jsonl"
"$WORK/wrapserved" -audit-export "$WORK/audit.jsonl" > "$WORK/checkpoints.jsonl"
python3 - "$WORK/checkpoints.jsonl" <<'PY'
import json, sys
lines = [json.loads(l) for l in open(sys.argv[1]) if l.strip()]
for cp in lines:
    assert cp["seq"] > 0 and len(cp["root"]) == 64, cp
print("audit export: %d checkpoint anchor(s)" % len(lines))
PY
cp "$WORK/audit.jsonl" "$WORK/audit-tampered.jsonl"
python3 - "$WORK/audit-tampered.jsonl" <<'PY'
import sys
p = sys.argv[1]
b = bytearray(open(p, "rb").read())
b[len(b) // 2] ^= 0x01
open(p, "wb").write(bytes(b))
PY
set +e
"$WORK/wrapserved" -audit-verify "$WORK/audit-tampered.jsonl"; code=$?
set -e
if [ "$code" != "4" ]; then
  echo "smoke-serve: tampered ledger exited $code, want 4" >&2
  exit 1
fi
set +e
"$WORK/wrapserved" -audit-verify "$WORK/no-such-ledger.jsonl"; code=$?
set -e
if [ "$code" != "1" ]; then
  echo "smoke-serve: missing ledger exited $code, want 1" >&2
  exit 1
fi
echo "smoke-serve: audit verbs OK (verify=0, export=0, tampered=4, missing=1)"

# --- Multi-process fleet: two -role shard processes + a -role front ---
# Each shard process boots its ring partition from its own copy of the
# registry and its own audit ledger; the front owns the ring and
# forwards. The phases: forwarded extraction is byte-identical to
# direct (modulo elapsed_us timing), a learn through the front lands on
# the owning shard PROCESS, killing one shard leaves the other
# partition serving (503 naming the dead shard for its sites), and the
# drain is ordered: front first, then the survivors.
S0_ADDR="127.0.0.1:$((${SMOKE_PORT:-8931} + 3))"
S1_ADDR="127.0.0.1:$((${SMOKE_PORT:-8931} + 4))"
FRONT_ADDR="127.0.0.1:$((${SMOKE_PORT:-8931} + 5))"
cp "$WORK/wrappers.json" "$WORK/shard0.json"
cp "$WORK/wrappers.json" "$WORK/shard1.json"
"$WORK/wrapserved" -role shard -shard-index 0 -shards 2 \
  -store "$WORK/shard0.json" -audit-log "$WORK/shard0-audit.jsonl" \
  -addr "$S0_ADDR" -dict "$WORK/dict-all.txt" \
  -learn-workers 1 -job-queue 8 -learn-corpus-root "$WORK/corpus" &> "$WORK/shard0.log" &
S0_PID=$!
"$WORK/wrapserved" -role shard -shard-index 1 -shards 2 \
  -store "$WORK/shard1.json" -audit-log "$WORK/shard1-audit.jsonl" \
  -addr "$S1_ADDR" -dict "$WORK/dict-all.txt" \
  -learn-workers 1 -job-queue 8 -learn-corpus-root "$WORK/corpus" &> "$WORK/shard1.log" &
S1_PID=$!
"$WORK/wrapserved" -role front -peers "$S0_ADDR,$S1_ADDR" \
  -addr "$FRONT_ADDR" &> "$WORK/front.log" &
FRONT_PID=$!

for a in "$S0_ADDR" "$S1_ADDR" "$FRONT_ADDR"; do
  healthy=""
  for _ in $(seq 1 50); do
    if curl -fsS "http://$a/healthz" > /dev/null 2>&1; then healthy=yes; break; fi
    sleep 0.2
  done
  if [ -z "$healthy" ]; then
    echo "smoke-serve: multiproc process on $a never became healthy" >&2
    cat "$WORK/shard0.log" "$WORK/shard1.log" "$WORK/front.log" >&2
    exit 1
  fi
done
curl -fsS "http://$FRONT_ADDR/healthz" \
  | python3 -c 'import json,sys; d=json.load(sys.stdin); ps=d["peers"]; assert len(ps)==2 and all(p["ok"] for p in ps), d; print("multiproc healthz: front sees %d live peer(s), %d sites" % (len(ps), d["sites"]))'

# Which shard process owns the demo site? Ask the front's merged
# /v1/sites, then pin the matching direct address.
owner="$(curl -fsS "http://$FRONT_ADDR/v1/sites" \
  | python3 -c "import json,sys; print([s['shard'] for s in json.load(sys.stdin) if s['site'] == '$site'][0])")"
direct="$S0_ADDR"; [ "$owner" = "1" ] && direct="$S1_ADDR"

# Forwarded == direct, byte for byte once per-request timing is masked.
curl -fsS -X POST --data-binary @"$WORK/req.json" "http://$FRONT_ADDR/v1/extract" > "$WORK/via-front.json"
curl -fsS -X POST --data-binary @"$WORK/req.json" "http://$direct/v1/extract" > "$WORK/via-direct.json"
python3 - "$WORK/via-front.json" "$WORK/via-direct.json" <<'PY'
import re, sys
mask = lambda p: re.sub(rb'"elapsed_us":[0-9]+', b'"elapsed_us":0', open(p, "rb").read())
a, b = mask(sys.argv[1]), mask(sys.argv[2])
assert a == b, "forwarded response differs from direct:\n%s\n%s" % (a, b)
print("multiproc parity: forwarded extract == direct extract (%d bytes)" % len(a))
PY

# A learn submitted through the front must run on the owning shard
# process: the job id carries its s<k>- prefix and polls done via the
# front's routed /v1/jobs.
MP_JOB="$(curl -fsS -X POST -d "{\"site\":\"$site\",\"corpus_dir\":\"$WORK/corpus/DEALERS/$site\"}" \
  "http://$FRONT_ADDR/v1/learn" \
  | python3 -c 'import json,sys; d=json.load(sys.stdin); assert d["state"] in ("queued","running"), d; print(d["job_id"])')"
mp_shard="${MP_JOB%%-*}"; mp_shard="${mp_shard#s}"
if [ "$mp_shard" != "$owner" ]; then
  echo "smoke-serve: multiproc learn ran on shard $mp_shard, ring owner is $owner" >&2
  exit 1
fi
state=""
for _ in $(seq 1 100); do
  state="$(curl -fsS "http://$FRONT_ADDR/v1/jobs/$MP_JOB" \
    | python3 -c 'import json,sys; print(json.load(sys.stdin)["state"])')"
  [ "$state" = "done" ] && break
  case "$state" in failed|canceled)
    echo "smoke-serve: multiproc learn job ended $state" >&2; exit 1 ;; esac
  sleep 0.2
done
if [ "$state" != "done" ]; then
  echo "smoke-serve: multiproc learn job stuck in state $state" >&2
  exit 1
fi
echo "multiproc learn landed on owning shard process $owner ($MP_JOB)"

# Kill the owning shard process outright (no drain). The front must
# stay healthy, serve the surviving partition, and answer 503 naming
# the dead shard for sites it owned.
victim_pid="$S0_PID"; victim_addr="$S0_ADDR"; survivor_addr="$S1_ADDR"
if [ "$owner" = "1" ]; then victim_pid="$S1_PID"; victim_addr="$S1_ADDR"; survivor_addr="$S0_ADDR"; fi
kill -9 "$victim_pid"
wait "$victim_pid" 2>/dev/null || true
if [ "$owner" = "1" ]; then S1_PID=""; else S0_PID=""; fi

code="$(curl -s -o "$WORK/dead.json" -w '%{http_code}' -X POST \
  --data-binary @"$WORK/req.json" "http://$FRONT_ADDR/v1/extract")"
if [ "$code" != "503" ]; then
  echo "smoke-serve: extract for dead shard answered $code, want 503" >&2
  exit 1
fi
grep -q "shard $owner ($victim_addr)" "$WORK/dead.json" || {
  echo "smoke-serve: 503 does not name the dead shard: $(cat "$WORK/dead.json")" >&2
  exit 1
}
# A site on the surviving shard still extracts through the front.
livesite="$(curl -fsS "http://$survivor_addr/v1/sites" \
  | python3 -c 'import json,sys; s=json.load(sys.stdin); assert s, "survivor serves no sites"; print(s[0]["site"])')"
python3 - "$livesite" "$WORK/corpus/DEALERS/$livesite/page-000.html" > "$WORK/req-live.json" <<'PY'
import json, sys
print(json.dumps({"site": sys.argv[1],
                  "page": {"id": "smoke-mp", "html": open(sys.argv[2]).read()}}))
PY
curl -fsS -X POST --data-binary @"$WORK/req-live.json" "http://$FRONT_ADDR/v1/extract" \
  | python3 -c 'import json,sys; d=json.load(sys.stdin); r=d["results"][0]["records"]; assert r, d; print("multiproc partial availability: surviving shard extracts %d records" % len(r))'
curl -fsS "http://$FRONT_ADDR/healthz" \
  | python3 -c "import json,sys; d=json.load(sys.stdin); dead=[p for p in d['peers'] if not p['ok']]; assert len(dead)==1 and dead[0]['shard']==$owner, d; print('multiproc healthz: front up, shard %d reported down' % dead[0]['shard'])"

# Ordered drain: the front goes first (stops admitting, finishes its
# in-flight forwards, drains the peers' job planes remotely), then the
# surviving shard is terminated.
kill -TERM "$FRONT_PID"
wait "$FRONT_PID"
FRONT_PID=""
grep -q "drained cleanly" "$WORK/front.log" || {
  echo "smoke-serve: no front clean-drain log line" >&2; cat "$WORK/front.log" >&2; exit 1;
}
survivor_pid="$S0_PID$S1_PID" # exactly one survivor is still set
survivor_log="$WORK/shard0.log"; [ "$owner" = "0" ] && survivor_log="$WORK/shard1.log"
kill -TERM "$survivor_pid"
wait "$survivor_pid"
S0_PID=""; S1_PID=""
grep -q "drained cleanly" "$survivor_log" || {
  echo "smoke-serve: no surviving-shard clean-drain log line" >&2; cat "$survivor_log" >&2; exit 1;
}
# The surviving shard's audit ledger must still verify end to end.
survivor_audit="$WORK/shard0-audit.jsonl"; [ "$owner" = "0" ] && survivor_audit="$WORK/shard1-audit.jsonl"
"$WORK/wrapserved" -audit-verify "$survivor_audit"
echo "smoke-serve: multiproc OK (parity, routed learn, partial availability, ordered drain)"

echo "smoke-serve: OK (single server + 4-shard fleet + log backend with audit + audit verbs + multi-process fleet)"
