#!/usr/bin/env bash
# Run the benchmark suite and record results in benchmarks/latest.txt.
#
#   BENCH_PATTERN  regexp of benchmarks to run (default: the
#                  regression-tracked set — engine batch learning, the
#                  extraction runtime, the serving daemon and the durable
#                  store/audit append paths; use '.' for
#                  the full paper suite)
#   BENCH_TIME     -benchtime per benchmark (default: 1s)
#   BENCH_COUNT    -count repetitions (default: 1; use >= 3 before
#                  promoting a baseline)
#
# Promote a reviewed result with scripts/bench-update.sh; CI compares
# benchmarks/latest.txt against benchmarks/baseline.txt via
# scripts/bench-compare.sh.
set -euo pipefail
cd "$(dirname "$0")/.."

PATTERN="${BENCH_PATTERN:-EngineBatch|Extract|HealthObserve|ServeExtract|ShardedDispatch|JobsSubmit|LogAppend|AuditAppend}"
TIME="${BENCH_TIME:-1s}"
COUNT="${BENCH_COUNT:-1}"

mkdir -p benchmarks
go test -run '^$' -bench "$PATTERN" -benchmem -benchtime "$TIME" -count "$COUNT" . \
  | tee benchmarks/latest.txt
echo "wrote benchmarks/latest.txt (pattern=$PATTERN benchtime=$TIME count=$COUNT)"
