#!/usr/bin/env bash
# Compare benchmarks/latest.txt against benchmarks/baseline.txt and fail
# when any benchmark's ns/op regressed by more than
# BENCH_MAX_REGRESSION_PCT percent (default: 10), or when a serving
# hot-path benchmark (ServeExtract*, ShardedDispatch*,
# LogAppend, AuditAppend) grew its B/op by more than
# BENCH_MAX_BYTES_REGRESSION_PCT percent (default: 10) — the allocation
# discipline of the request path is gated, not just its latency. The B/op
# gate arms only when both files carry -benchmem columns.
#
# Usage: bench-compare.sh [baseline] [latest]
#
# Only benchmarks present in BOTH files are compared (averaged over -count
# repetitions; the goroutine-count suffix Go appends to benchmark names is
# stripped so runs from hosts with different core counts still line up).
# Exits 0 when no baseline exists yet — the gate arms itself the first time
# a baseline is promoted with scripts/bench-update.sh.
#
# Absolute ns/op only means something on the hardware that recorded the
# baseline, so when the goos/goarch/cpu header lines of the two files
# disagree the gate disarms (warn + exit 0) instead of reporting hardware
# deltas as regressions. Re-promote a baseline on the new host to re-arm.
set -euo pipefail
cd "$(dirname "$0")/.."

BASELINE="${1:-benchmarks/baseline.txt}"
LATEST="${2:-benchmarks/latest.txt}"
MAX_PCT="${BENCH_MAX_REGRESSION_PCT:-10}"
MAX_BYTES_PCT="${BENCH_MAX_BYTES_REGRESSION_PCT:-10}"

if [ ! -f "$BASELINE" ]; then
  echo "bench-compare: no baseline at $BASELINE; nothing to compare (gate unarmed)"
  exit 0
fi
if [ ! -f "$LATEST" ]; then
  echo "bench-compare: no results at $LATEST; run scripts/bench.sh first" >&2
  exit 1
fi

# The go test header identifies the recording host.
host_of() { grep -E '^(goos|goarch|cpu):' "$1" | sort | tr -s ' '; }
if [ "$(host_of "$BASELINE")" != "$(host_of "$LATEST")" ]; then
  echo "bench-compare: baseline and latest were recorded on different hosts; gate disarmed"
  echo "  baseline: $(host_of "$BASELINE" | tr '\n' ' ')"
  echo "  latest:   $(host_of "$LATEST" | tr '\n' ' ')"
  echo "  re-promote a baseline on this host (scripts/bench-update.sh) to re-arm"
  exit 0
fi

awk -v max="$MAX_PCT" -v maxbytes="$MAX_BYTES_PCT" \
    -v basefile="$BASELINE" -v latestfile="$LATEST" '
  # Benchmark lines look like: BenchmarkName-8  120  9876543 ns/op  512 B/op  8 allocs/op
  function benchname(s) { sub(/-[0-9]+$/, "", s); return s }
  FNR == 1 { fileno++ }
  /^Benchmark/ {
    name = benchname($1)
    for (i = 2; i < NF; i++) {
      if ($(i + 1) == "ns/op") {
        if (fileno == 1) { bsum[name] += $i; bcnt[name]++ }
        else             { lsum[name] += $i; lcnt[name]++ }
      }
      if ($(i + 1) == "B/op" && name ~ /ServeExtract|ShardedDispatch|LogAppend|AuditAppend/) {
        if (fileno == 1) { bbytes[name] += $i; bbcnt[name]++ }
        else             { lbytes[name] += $i; lbcnt[name]++ }
      }
    }
  }
  END {
    compared = 0; failed = 0
    for (name in bsum) {
      if (!(name in lsum)) continue
      compared++
      base = bsum[name] / bcnt[name]
      latest = lsum[name] / lcnt[name]
      delta = (latest - base) * 100.0 / base
      status = "ok"
      if (delta > max) { status = "REGRESSION"; failed++ }
      printf "%-40s base=%.0fns latest=%.0fns delta=%+.1f%% %s\n",
             name, base, latest, delta, status
    }
    # Allocation gate on the serving hot path: B/op must not creep back up.
    for (name in bbytes) {
      if (!(name in lbytes)) continue
      base = bbytes[name] / bbcnt[name]
      latest = lbytes[name] / lbcnt[name]
      if (base == 0) continue
      delta = (latest - base) * 100.0 / base
      status = "ok"
      if (delta > maxbytes) { status = "ALLOC REGRESSION"; failed++ }
      printf "%-40s base=%.0fB/op latest=%.0fB/op delta=%+.1f%% %s\n",
             name, base, latest, delta, status
    }
    if (compared == 0) {
      printf "bench-compare: no common benchmarks between %s and %s\n", basefile, latestfile > "/dev/stderr"
      exit 1
    }
    if (failed > 0) {
      printf "bench-compare: %d benchmark(s) regressed more than allowed (ns/op > %s%% or hot-path B/op > %s%%)\n", failed, max, maxbytes > "/dev/stderr"
      exit 1
    }
    printf "bench-compare: %d benchmark(s) within %s%% of baseline\n", compared, max
  }
' "$BASELINE" "$LATEST"
