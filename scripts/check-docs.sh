#!/usr/bin/env bash
# Documentation gate, run by the CI docs job:
#
#   1. Every intra-repo markdown link ([text](relative/path)) in the
#      repo's tracked .md files must resolve to an existing file.
#   2. Every fenced ```go block in README.md, DESIGN.md and docs/*.md
#      must be syntactically valid, gofmt-clean Go. Blocks that are not
#      full files are wrapped (imports hoisted to a synthetic header,
#      statements into a function body) before formatting, so examples
#      stay copy-pasteable fragments.
#   3. Every `autowrap.Identifier` reference inside those go blocks must
#      name something the facade package actually declares (grep-level:
#      top-level and grouped declarations in the root package files), so
#      examples cannot silently outlive a facade rename.
#
# Use a non-go fence (```text, ```sh, ...) for prose that merely looks
# like code; ```go means "this is checked".
set -euo pipefail
cd "$(dirname "$0")/.."

fail=0

# --- 1. intra-repo link check -------------------------------------------

mdfiles="$(git ls-files '*.md' 2>/dev/null || find . -name '*.md' -not -path './.git/*')"

for md in $mdfiles; do
  case "$md" in
    # Machine-captured paper abstracts keep their source's figure links.
    PAPERS.md|PAPER.md|./PAPERS.md|./PAPER.md) continue ;;
  esac
  dir="$(dirname "$md")"
  # Pull out markdown link targets: [text](target). One per line.
  targets="$(grep -o '\[[^][]*\]([^()]*)' "$md" 2>/dev/null | sed 's/.*(\(.*\))/\1/' || true)"
  while IFS= read -r target; do
    [ -z "$target" ] && continue
    case "$target" in
      http://*|https://*|mailto:*|\#*) continue ;;
    esac
    path="${target%%#*}" # strip fragment
    [ -z "$path" ] && continue
    if [ ! -e "$dir/$path" ] && [ ! -e "$path" ]; then
      echo "check-docs: $md: broken intra-repo link: $target" >&2
      fail=1
    fi
  done <<EOF2
$targets
EOF2
done

# --- 2. gofmt over fenced go blocks -------------------------------------

tmpdir="$(mktemp -d)"
trap 'rm -rf "$tmpdir"' EXIT

docfiles="README.md DESIGN.md"
for f in docs/*.md; do
  [ -e "$f" ] && docfiles="$docfiles $f"
done

for md in $docfiles; do
  [ -f "$md" ] || continue
  # Split every ```go fence into its own numbered snippet file.
  awk -v out="$tmpdir/$(echo "$md" | tr '/' '_')" '
    /^```go$/ { inblock = 1; n++; next }
    /^```/    { inblock = 0; next }
    inblock   { print > (out ".snippet" n) }
  ' "$md"
done

for snippet in "$tmpdir"/*.snippet*; do
  [ -e "$snippet" ] || continue
  name="$(basename "$snippet")"
  wrapped="$tmpdir/wrapped-$name.go"
  if head -1 "$snippet" | grep -q '^package '; then
    cp "$snippet" "$wrapped"
  else
    # Hoist import lines (single-line or parenthesized group) into the
    # synthetic file header; everything else becomes a function body at
    # one tab of indentation — exactly how gofmt would lay it out.
    imports="$(awk '
      /^import \(/   { ingroup = 1 }
      ingroup        { print; if ($0 == ")") ingroup = 0; next }
      /^import[ \t]/ { print }
    ' "$snippet")"
    # Command substitution strips trailing blank lines; the sed drops
    # leading ones, so the synthetic body starts and ends tight.
    body="$(awk '
      /^import \(/   { ingroup = 1 }
      ingroup        { if ($0 == ")") ingroup = 0; next }
      /^import[ \t]/ { next }
                     { print }
    ' "$snippet" | sed '/./,$!d')"
    {
      echo "package snippets"
      echo
      if [ -n "$imports" ]; then
        printf '%s\n\n' "$imports"
      fi
      echo "func _() {"
      printf '%s\n' "$body" | sed -e 's/^\(.\)/\t\1/'
      echo "}"
    } > "$wrapped"
  fi
  if ! formatted="$(gofmt "$wrapped" 2>"$tmpdir/err-$name")"; then
    echo "check-docs: $name: go snippet does not parse:" >&2
    sed "s/^/  /" "$tmpdir/err-$name" >&2
    fail=1
    continue
  fi
  if [ "$formatted" != "$(cat "$wrapped")" ]; then
    echo "check-docs: $name: go snippet is not gofmt-clean; diff (have vs want):" >&2
    diff "$wrapped" <(printf '%s\n' "$formatted") | sed 's/^/  /' >&2 || true
    fail=1
  fi
done

# --- 3. facade identifiers referenced by go snippets ---------------------

# Exported names of the root (facade) package: top-level declarations plus
# tab-indented members of type/const/var groups. Struct fields sneak into
# the second pattern, which only ever widens the accepted set — the check
# errs toward false acceptance, never false rejection.
facade_files="$(ls ./*.go | grep -v '_test\.go$')"
facade_idents="$tmpdir/facade-idents"
{
  grep -hoE '^(func|type|var|const) [A-Z][A-Za-z0-9_]*' $facade_files | awk '{print $2}'
  grep -hoE $'^\t[A-Z][A-Za-z0-9_]*' $facade_files | tr -d '\t'
} | sort -u > "$facade_idents"

for snippet in "$tmpdir"/*.snippet*; do
  [ -e "$snippet" ] || continue
  case "$snippet" in *wrapped-*|*err-*) continue ;; esac
  refs="$(grep -ohE 'autowrap\.[A-Z][A-Za-z0-9_]*' "$snippet" | sed 's/^autowrap\.//' | sort -u || true)"
  while IFS= read -r ref; do
    [ -z "$ref" ] && continue
    if ! grep -qxF "$ref" "$facade_idents"; then
      echo "check-docs: $(basename "$snippet"): references autowrap.$ref, which the facade does not export" >&2
      fail=1
    fi
  done <<EOF3
$refs
EOF3
done

if [ "$fail" -ne 0 ]; then
  echo "check-docs: FAILED" >&2
  exit 1
fi
echo "check-docs: all intra-repo links resolve, go snippets are gofmt-clean, and snippet identifiers exist in the facade"
