// End-to-end acceptance tests for the fleet transport seam (ISSUE 10):
// the same fleet logic runs in-process (localShard: direct dispatcher
// calls) and across real HTTP boundaries (httpShard: a forwarding front
// end over independently booted shard servers), and the two transports
// are observably identical — byte-identical extract responses, matching
// gate ledgers, equivalent audit chains. Plus the ring-agreement
// contract: a front and a shard that disagree on the ring refuse each
// other loudly (handshake failure at boot, 503 per request), and a
// shard refuses sites it does not own (421).
package autowrap_test

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
	"time"

	"autowrap"
	"autowrap/internal/audit"
	"autowrap/internal/dataset"
	"autowrap/internal/gen"
	"autowrap/internal/serve"
	"autowrap/internal/shard"
	"autowrap/internal/store/filestore"
)

// learnRegistry learns v1 wrappers for n dealer sites and returns the
// sites plus the saved registry path.
func learnRegistry(t *testing.T, dir string, n int) ([]*gen.Site, autowrap.Annotator, string) {
	t.Helper()
	ds, err := dataset.Dealers(dataset.DealersOptions{NumSites: n, NumPages: 8, Seed: 77})
	if err != nil {
		t.Fatal(err)
	}
	newInductor := func(c *autowrap.Corpus) (autowrap.Inductor, error) {
		return autowrap.NewXPathInductor(c), nil
	}
	var specs []autowrap.BatchSite
	for _, site := range ds.Sites {
		specs = append(specs, autowrap.BatchSite{
			Name: site.Name, Corpus: site.Corpus, Annotator: ds.Annotator,
			NewInductor: newInductor,
			Config:      autowrap.NewLearnConfig(autowrap.GenericModels(site.Corpus), autowrap.Options{}),
		})
	}
	batch, err := autowrap.LearnBatch(context.Background(), specs, autowrap.BatchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	st := autowrap.NewWrapperStore()
	if got, err := autowrap.StoreBatch(st, batch); got != n || err != nil {
		t.Fatalf("StoreBatch: n=%d err=%v", got, err)
	}
	path := filepath.Join(dir, "wrappers.json")
	if err := st.Save(path); err != nil {
		t.Fatal(err)
	}
	return ds.Sites, ds.Annotator, path
}

// shardServerConfig builds one shard-role server the way wrapserved
// -role shard does: partition k of the ring, its own backend and audit
// ledger, the ring pinned for per-request agreement checks.
func shardServer(t *testing.T, ring *shard.Ring, k int, storePath, auditPath string,
	annot autowrap.Annotator) *serve.Server {
	t.Helper()
	be, err := filestore.Open(storePath)
	if err != nil {
		t.Fatal(err)
	}
	part, err := be.LoadPartition(ring, k)
	if err != nil {
		t.Fatal(err)
	}
	var led *audit.Ledger
	if auditPath != "" {
		led, err = audit.Open(auditPath, audit.Options{})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { led.Close() })
	}
	cfg := serve.ServerConfig{
		Dispatcher: serve.NewDispatcher(part, serve.Options{}),
		Backend:    be,
		Shard:      k,
		Ring:       ring,
		Audit:      led,
	}
	if annot != nil {
		newInductor := func(c *autowrap.Corpus) (autowrap.Inductor, error) {
			return autowrap.NewXPathInductor(c), nil
		}
		cfg.Repairer = &autowrap.Repairer{
			Store: part,
			Spec: func(site string, c *autowrap.Corpus) (autowrap.BatchSite, error) {
				return autowrap.BatchSite{Annotator: annot, NewInductor: newInductor,
					Config: autowrap.NewLearnConfig(autowrap.GenericModels(c), autowrap.Options{})}, nil
			},
		}
		cfg.Jobs = autowrap.NewJobManager(autowrap.JobOptions{
			Workers: 1, QueueDepth: 4, IDPrefix: fmt.Sprintf("s%d-", k),
		})
	}
	srv, err := serve.NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv
}

// elapsedRe masks the one legitimately nondeterministic byte sequence
// in an extract response — per-page wall time — so parity can demand
// byte equality on everything else.
var elapsedRe = regexp.MustCompile(`"elapsed_us":[0-9]+`)

// rawPost posts body and returns status + raw response bytes (with
// elapsed_us masked) — the parity comparisons are byte-level, not
// decoded-shape-level.
func rawPost(t *testing.T, url string, v any) (int, []byte) {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, elapsedRe.ReplaceAll(out, []byte(`"elapsed_us":0`))
}

// TestTransportParityLocalVsForward runs the same request script against
// two deployments of the same registry — an in-process two-shard fleet
// and a forwarding front over two shard servers reached across real HTTP
// — and demands the transports be indistinguishable: identical extract
// bytes, identical error answers, matching gate ledgers, and audit
// chains that verify and carry the same lifecycle events.
func TestTransportParityLocalVsForward(t *testing.T) {
	dir := t.TempDir()
	sites, annot, regPath := learnRegistry(t, dir, 3)
	const shards = 2
	ring := shard.NewRing(shards, 64)

	// Deployment A: the in-process fleet (localShard transport), one
	// shared backend + one shared audit ledger, as wrapserved -shards 2.
	localStore := filepath.Join(dir, "local.json")
	copyFile(t, regPath, localStore)
	localAudit := filepath.Join(dir, "local-audit.jsonl")
	beLocal, err := filestore.Open(localStore)
	if err != nil {
		t.Fatal(err)
	}
	ledLocal, err := audit.Open(localAudit, audit.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ledLocal.Close() })
	newInductor := func(c *autowrap.Corpus) (autowrap.Inductor, error) {
		return autowrap.NewXPathInductor(c), nil
	}
	localRouter, err := serve.NewShardRouter(ring, func(k int) (*serve.Server, error) {
		part, err := beLocal.LoadPartition(ring, k)
		if err != nil {
			return nil, err
		}
		return serve.NewServer(serve.ServerConfig{
			Dispatcher: serve.NewDispatcher(part, serve.Options{}),
			Backend:    beLocal,
			Shard:      k,
			Audit:      ledLocal,
			Repairer: &autowrap.Repairer{
				Store: part,
				Spec: func(site string, c *autowrap.Corpus) (autowrap.BatchSite, error) {
					return autowrap.BatchSite{Annotator: annot, NewInductor: newInductor,
						Config: autowrap.NewLearnConfig(autowrap.GenericModels(c), autowrap.Options{})}, nil
				},
			},
			Jobs: autowrap.NewJobManager(autowrap.JobOptions{
				Workers: 1, QueueDepth: 4, IDPrefix: fmt.Sprintf("s%d-", k),
			}),
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	localFront := httptest.NewServer(localRouter.Handler())
	defer localFront.Close()

	// Deployment B: shard-role servers behind real listeners, fronted by
	// the forwarding router (httpShard transport). Each shard has its own
	// store file and audit ledger, as independently booted processes do.
	var peers []string
	var shardAudits []string
	for k := 0; k < shards; k++ {
		sp := filepath.Join(dir, fmt.Sprintf("shard%d.json", k))
		copyFile(t, regPath, sp)
		ap := filepath.Join(dir, fmt.Sprintf("shard%d-audit.jsonl", k))
		shardAudits = append(shardAudits, ap)
		srv := shardServer(t, ring, k, sp, ap, annot)
		hs := httptest.NewServer(srv.Handler())
		t.Cleanup(hs.Close)
		peers = append(peers, strings.TrimPrefix(hs.URL, "http://"))
	}
	fwdRouter, err := serve.NewForwardRouter(ring, peers, serve.ForwardOptions{})
	if err != nil {
		t.Fatal(err)
	}
	fwdFront := httptest.NewServer(fwdRouter.Handler())
	defer fwdFront.Close()

	// Byte-identical extract responses for every site, single and batch.
	for _, site := range sites {
		for _, req := range []serve.ExtractRequest{
			{Site: site.Name, Page: &serve.PageInput{ID: "p0", HTML: site.Corpus.Pages[0].HTML}},
			{Site: site.Name,
				Pages: []serve.PageInput{
					{ID: "p1", HTML: site.Corpus.Pages[1].HTML},
					{ID: "p2", HTML: site.Corpus.Pages[2].HTML},
				}},
		} {
			lc, lb := rawPost(t, localFront.URL+"/v1/extract", req)
			fc, fb := rawPost(t, fwdFront.URL+"/v1/extract", req)
			if lc != http.StatusOK {
				t.Fatalf("%s local extract: status %d: %s", site.Name, lc, lb)
			}
			if fc != lc || !bytes.Equal(fb, lb) {
				t.Fatalf("%s transport divergence:\nlocal   %d %s\nforward %d %s",
					site.Name, lc, lb, fc, fb)
			}
		}
	}

	// Error paths answer identically through both transports.
	type errCase struct {
		path string
		body any
	}
	for _, c := range []errCase{
		{"/v1/extract", serve.ExtractRequest{Site: "nobody.example.com",
			Page: &serve.PageInput{HTML: "<p>x</p>"}}},
		{"/v1/promote", serve.AdminRequest{Site: sites[0].Name, Version: 99}},
		{"/v1/rollback", serve.AdminRequest{Site: "nobody.example.com"}},
	} {
		lc, lb := rawPost(t, localFront.URL+c.path, c.body)
		fc, fb := rawPost(t, fwdFront.URL+c.path, c.body)
		if fc != lc || !bytes.Equal(fb, lb) {
			t.Fatalf("%s error divergence:\nlocal   %d %s\nforward %d %s", c.path, lc, lb, fc, fb)
		}
	}

	// The same learn lands on the owning shard in both deployments and
	// yields the same job identity (the s<k>- prefix IS the owner).
	newSite, _, _ := maintPairSeed(t, 4004)
	var pages []string
	for _, p := range newSite.Corpus.Pages {
		pages = append(pages, p.HTML)
	}
	learnReq := serve.LearnRequest{Site: newSite.Name + "-parity", Pages: pages}
	var accLocal, accFwd serve.JobAccepted
	if code := postJSON(t, localFront.URL+"/v1/learn", learnReq, &accLocal); code != http.StatusAccepted {
		t.Fatalf("local learn: status %d", code)
	}
	if code := postJSON(t, fwdFront.URL+"/v1/learn", learnReq, &accFwd); code != http.StatusAccepted {
		t.Fatalf("forward learn: status %d", code)
	}
	if accLocal.JobID != accFwd.JobID {
		t.Fatalf("job identity diverged: local %q, forward %q", accLocal.JobID, accFwd.JobID)
	}
	waitJob(t, localFront.URL, accLocal.JobID)
	waitJob(t, fwdFront.URL, accFwd.JobID) // polled THROUGH the forwarding front

	lc, lb := rawPost(t, localFront.URL+"/v1/extract", serve.ExtractRequest{
		Site: learnReq.Site, Page: &serve.PageInput{ID: "n0", HTML: pages[0]}})
	fc, fb := rawPost(t, fwdFront.URL+"/v1/extract", serve.ExtractRequest{
		Site: learnReq.Site, Page: &serve.PageInput{ID: "n0", HTML: pages[0]}})
	if lc != http.StatusOK || fc != lc || !bytes.Equal(fb, lb) {
		t.Fatalf("learned-site divergence:\nlocal   %d %s\nforward %d %s", lc, lb, fc, fb)
	}

	// Gate ledgers match: both fleets admitted the same requests.
	var mLocal, mFwd serve.FleetMetricsResponse
	getJSON(t, localFront.URL+"/metrics", &mLocal)
	getJSON(t, fwdFront.URL+"/metrics", &mFwd)
	if mLocal.Gate.Admitted != mFwd.Gate.Admitted || mLocal.Gate.Rejected != mFwd.Gate.Rejected ||
		mLocal.Gate.TimedOut != mFwd.Gate.TimedOut {
		t.Fatalf("gate ledgers diverged:\nlocal   %+v\nforward %+v", mLocal.Gate, mFwd.Gate)
	}
	if mLocal.Fleet.Requests != mFwd.Fleet.Requests {
		t.Fatalf("request ledgers diverged: local %d, forward %d",
			mLocal.Fleet.Requests, mFwd.Fleet.Requests)
	}

	// Audit chains: every ledger verifies from genesis, and the shared
	// local chain carries exactly the lifecycle events the per-process
	// chains carry between them.
	if _, err := audit.VerifyFile(localAudit); err != nil {
		t.Fatalf("local audit chain: %v", err)
	}
	var fwdEvents []string
	for _, ap := range shardAudits {
		if _, err := audit.VerifyFile(ap); err != nil {
			t.Fatalf("shard audit chain %s: %v", ap, err)
		}
		fwdEvents = append(fwdEvents, auditEventKeys(t, ap)...)
	}
	localEvents := auditEventKeys(t, localAudit)
	if !sameMultiset(localEvents, fwdEvents) {
		t.Fatalf("audit events diverged:\nlocal   %v\nforward %v", localEvents, fwdEvents)
	}
}

// TestForwardRingAgreement pins the topology-mismatch contract end to
// end: boot-time handshake refusal, per-request 503 on a pinned
// mismatch, and 421 for a site the shard does not own.
func TestForwardRingAgreement(t *testing.T) {
	dir := t.TempDir()
	sites, _, regPath := learnRegistry(t, dir, 3)

	// A shard that believes the ring is N=3.
	ring3 := shard.NewRing(3, 64)
	sp := filepath.Join(dir, "shard0.json")
	copyFile(t, regPath, sp)
	srv := shardServer(t, ring3, 0, sp, "", nil)
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()
	addr := strings.TrimPrefix(hs.URL, "http://")

	// Handshake: a front built for N=4 must refuse the reachable peer by
	// name, wrapping ErrRingMismatch (the unreachable peers only degrade).
	ring4 := shard.NewRing(4, 64)
	_, err := serve.NewForwardRouter(ring4,
		[]string{addr, "127.0.0.1:1", "127.0.0.1:1", "127.0.0.1:1"}, serve.ForwardOptions{})
	if !errors.Is(err, serve.ErrRingMismatch) {
		t.Fatalf("N=4 front over N=3 shard: err = %v, want ErrRingMismatch", err)
	}

	// Per-request: skip the handshake so the mismatched request reaches
	// the shard, which must 503 it with the named error — never serve it.
	ring1 := shard.NewRing(1, 64)
	fr, err := serve.NewForwardRouter(ring1, []string{addr}, serve.ForwardOptions{SkipHandshake: true})
	if err != nil {
		t.Fatal(err)
	}
	front := httptest.NewServer(fr.Handler())
	defer front.Close()
	code, body := rawPost(t, front.URL+"/v1/extract", serve.ExtractRequest{
		Site: sites[0].Name, Page: &serve.PageInput{HTML: sites[0].Corpus.Pages[0].HTML}})
	if code != http.StatusServiceUnavailable || !strings.Contains(string(body), serve.ErrRingMismatch.Error()) {
		t.Fatalf("pinned mismatch answered %d %s, want 503 naming %q",
			code, body, serve.ErrRingMismatch.Error())
	}

	// Ownership: a direct (unpinned) request for a site another shard
	// owns answers 421 with the owner named.
	victim := ""
	for _, s := range sites {
		if ring3.Owner(s.Name) != 0 {
			victim = s.Name
			break
		}
	}
	if victim == "" {
		t.Skip("ring assigned every generated site to shard 0")
	}
	code, body = rawPost(t, hs.URL+"/v1/extract", serve.ExtractRequest{
		Site: victim, Page: &serve.PageInput{HTML: "<p>x</p>"}})
	if code != http.StatusMisdirectedRequest || !strings.Contains(string(body), serve.ErrNotOwner.Error()) {
		t.Fatalf("non-owned site answered %d %s, want 421 naming %q",
			code, body, serve.ErrNotOwner.Error())
	}
}

// TestForwardPartialAvailability kills one shard process's listener and
// demands the fleet degrade by partition, not globally: the dead shard's
// sites answer 503 naming the shard, every other site keeps serving 200.
func TestForwardPartialAvailability(t *testing.T) {
	dir := t.TempDir()
	sites, _, regPath := learnRegistry(t, dir, 3)
	const shards = 2
	ring := shard.NewRing(shards, 64)

	var peers []string
	var backends []*httptest.Server
	for k := 0; k < shards; k++ {
		sp := filepath.Join(dir, fmt.Sprintf("shard%d.json", k))
		copyFile(t, regPath, sp)
		srv := shardServer(t, ring, k, sp, "", nil)
		hs := httptest.NewServer(srv.Handler())
		t.Cleanup(hs.Close)
		backends = append(backends, hs)
		peers = append(peers, strings.TrimPrefix(hs.URL, "http://"))
	}
	fr, err := serve.NewForwardRouter(ring, peers, serve.ForwardOptions{
		RequestTimeout: 2 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	front := httptest.NewServer(fr.Handler())
	defer front.Close()

	const victim = 1
	backends[victim].Close()

	for _, site := range sites {
		code, body := rawPost(t, front.URL+"/v1/extract", serve.ExtractRequest{
			Site: site.Name, Page: &serve.PageInput{ID: "p0", HTML: site.Corpus.Pages[0].HTML}})
		if ring.Owner(site.Name) == victim {
			want := fmt.Sprintf("shard %d", victim)
			if code != http.StatusServiceUnavailable || !strings.Contains(string(body), want) {
				t.Fatalf("%s (dead shard): %d %s, want 503 naming %q", site.Name, code, body, want)
			}
		} else if code != http.StatusOK {
			t.Fatalf("%s (surviving shard): status %d %s, want 200", site.Name, code, body)
		}
	}

	// The front itself stays healthy and names the dead peer.
	var h serve.FleetHealthzResponse
	resp, err := http.Get(front.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("front healthz with one dead peer: %d, want 200", resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(h.Peers) != shards || h.Peers[victim].OK || h.Peers[victim].Error == "" {
		t.Fatalf("front healthz peers = %+v, want shard %d marked unavailable", h.Peers, victim)
	}
	if !h.Peers[1-victim].OK {
		t.Fatalf("surviving peer reported down: %+v", h.Peers)
	}
}

// copyFile copies src to dst (registry fixtures for independent shards).
func copyFile(t *testing.T, src, dst string) {
	t.Helper()
	b, err := os.ReadFile(src)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(dst, b, 0o644); err != nil {
		t.Fatal(err)
	}
}

// getJSON GETs url and decodes the 200 body into v.
func getJSON(t *testing.T, url string, v any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatal(err)
	}
}

// auditEventKeys reads a ledger file and returns one "event/site/version"
// key per non-checkpoint record — the transport-independent content of
// the chain (hashes and timestamps legitimately differ per process).
func auditEventKeys(t *testing.T, path string) []string {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var keys []string
	for _, line := range bytes.Split(data, []byte("\n")) {
		if len(line) == 0 {
			continue
		}
		var rec audit.Record
		if err := json.Unmarshal(line, &rec); err != nil {
			t.Fatalf("audit record %s: %v", line, err)
		}
		if rec.Event == audit.EventCheckpoint {
			continue
		}
		keys = append(keys, fmt.Sprintf("%s/%s/v%d", rec.Event, rec.Site, rec.Version))
	}
	return keys
}

// sameMultiset reports whether a and b hold the same elements with the
// same multiplicities, order-free.
func sameMultiset(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	counts := make(map[string]int, len(a))
	for _, k := range a {
		counts[k]++
	}
	for _, k := range b {
		if counts[k]--; counts[k] < 0 {
			return false
		}
	}
	return true
}
