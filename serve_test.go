// Acceptance tests for the learn/serve split (ISSUE 2): a wrapper learned
// on one corpus, marshaled to JSON, unmarshaled as if in a fresh process,
// and applied to held-out pages of the same site must extract exactly the
// node set the inductor-native Extract() finds on those pages — for both
// the XPATH and the LR wrapper languages.
package autowrap_test

import (
	"context"
	"testing"

	"autowrap"
	"autowrap/internal/dataset"
	"autowrap/internal/dom"
	"autowrap/internal/experiments"
)

const servedPages = 10
const trainPages = 6

// serveDataset builds a small DEALERS dataset whose sites have enough pages
// to hold some out.
func serveDataset(t *testing.T) *dataset.Dataset {
	t.Helper()
	ds, err := dataset.Dealers(dataset.DealersOptions{NumSites: 6, NumPages: servedPages})
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func newInductor(t *testing.T, kind string, c *autowrap.Corpus) autowrap.Inductor {
	t.Helper()
	ind, err := experiments.NewInductor(kind, c)
	if err != nil {
		t.Fatal(err)
	}
	return ind
}

// testPortableMatchesNative runs the full acceptance cycle on every site of
// the dataset that yields enough labels.
func testPortableMatchesNative(t *testing.T, kind string) {
	ds := serveDataset(t)
	tested := 0
	heldPagesWithRecords := 0
	for _, site := range ds.Sites {
		// The corpus's canonical page HTML doubles as the "files on disk":
		// the train corpus parses only the first trainPages of them.
		var htmls []string
		for _, p := range site.Corpus.Pages {
			htmls = append(htmls, p.HTML)
		}
		train := autowrap.ParsePages(htmls[:trainPages])
		labels := ds.Annotator.Annotate(train)
		if labels.Count() < 2 {
			continue
		}
		res, err := autowrap.Learn(newInductor(t, kind, train), labels,
			autowrap.GenericModels(train), autowrap.Options{})
		if err != nil {
			t.Fatalf("site %s: learn: %v", site.Name, err)
		}
		if res.Best == nil {
			continue
		}
		learned := res.Best.Wrapper

		// Native reference: induce from the same closed label subset on the
		// corpus that includes the held-out pages, so Extract() covers them.
		full := autowrap.ParsePages(htmls)
		mapped := full.EmptySet()
		res.Best.TrainedOn.ForEach(func(ord int) {
			page, inPage := train.PageOf(ord), train.IndexInPage(ord)
			fullOrd := full.OrdinalOf(full.Pages[page].Texts[inPage])
			if fullOrd < 0 {
				t.Fatalf("site %s: train node (%d,%d) missing from full corpus",
					site.Name, page, inPage)
			}
			mapped.Add(fullOrd)
		})
		native, err := newInductor(t, kind, full).Induce(mapped)
		if err != nil {
			t.Fatalf("site %s: native induce: %v", site.Name, err)
		}
		if native.Rule() != learned.Rule() {
			t.Fatalf("site %s: full-corpus induction diverged:\n  train: %s\n  full:  %s",
				site.Name, learned.Rule(), native.Rule())
		}

		// The portable cycle: compile, marshal, unmarshal "elsewhere".
		compiled, err := autowrap.Compile(learned)
		if err != nil {
			t.Fatalf("site %s: compile: %v", site.Name, err)
		}
		blob, err := autowrap.MarshalWrapper(compiled)
		if err != nil {
			t.Fatalf("site %s: marshal: %v", site.Name, err)
		}
		served, err := autowrap.UnmarshalWrapper(blob)
		if err != nil {
			t.Fatalf("site %s: unmarshal: %v", site.Name, err)
		}

		// Held-out pages: the served wrapper must pick exactly the nodes the
		// native extraction marks on those pages.
		nativeSet := native.Extract()
		for p := trainPages; p < len(full.Pages); p++ {
			page := full.Pages[p]
			want := make(map[*dom.Node]bool)
			for _, n := range page.Texts {
				if nativeSet.Has(full.OrdinalOf(n)) {
					want[n] = true
				}
			}
			got := served.ApplyPage(page.Root)
			if len(got) != len(want) {
				t.Fatalf("site %s page %d: served extracted %d nodes, native %d",
					site.Name, p, len(got), len(want))
			}
			for _, n := range got {
				if !want[n] {
					t.Fatalf("site %s page %d: served extracted unexpected node %q",
						site.Name, p, n.PathString())
				}
			}
			if len(want) > 0 {
				heldPagesWithRecords++
			}
		}
		tested++
	}
	if tested == 0 {
		t.Fatal("no site yielded enough labels; dataset options too small")
	}
	if heldPagesWithRecords == 0 {
		t.Fatal("degenerate: no held-out page had any extraction to compare")
	}
}

func TestPortableMatchesNativeXPath(t *testing.T) { testPortableMatchesNative(t, "xpath") }

func TestPortableMatchesNativeLR(t *testing.T) { testPortableMatchesNative(t, "lr") }

// TestLearnStoreRestartExtract exercises the full lifecycle through the
// facade: batch-learn, store the winners, save, reload (the "restart"),
// and serve held-out pages through the extraction runtime.
func TestLearnStoreRestartExtract(t *testing.T) {
	ds := serveDataset(t)
	var sites []autowrap.BatchSite
	var held [][]autowrap.ExtractPage
	for _, site := range ds.Sites {
		var htmls []string
		for _, p := range site.Corpus.Pages {
			htmls = append(htmls, p.HTML)
		}
		train := autowrap.ParsePages(htmls[:trainPages])
		sites = append(sites, autowrap.BatchSite{
			Name:      site.Name,
			Corpus:    train,
			Annotator: ds.Annotator,
			NewInductor: func(c *autowrap.Corpus) (autowrap.Inductor, error) {
				return autowrap.NewXPathInductor(c), nil
			},
			Config: autowrap.NewLearnConfig(autowrap.GenericModels(train), autowrap.Options{}),
		})
		var pages []autowrap.ExtractPage
		for i := trainPages; i < len(htmls); i++ {
			pages = append(pages, autowrap.ExtractPage{ID: site.Name, HTML: htmls[i]})
		}
		held = append(held, pages)
	}
	batch, err := autowrap.LearnBatch(context.Background(), sites, autowrap.BatchOptions{MinLabels: 2})
	if err != nil {
		t.Fatal(err)
	}

	st := autowrap.NewWrapperStore()
	stored, err := autowrap.StoreBatch(st, batch)
	if err != nil {
		t.Fatal(err)
	}
	if stored == 0 {
		t.Fatal("no site was stored")
	}
	path := t.TempDir() + "/wrappers.json"
	if err := st.Save(path); err != nil {
		t.Fatal(err)
	}

	// "Restart": everything below uses only the reloaded registry.
	reloaded, err := autowrap.LoadWrapperStore(path)
	if err != nil {
		t.Fatal(err)
	}
	extracted := 0
	for i, site := range sites {
		entry, ok := reloaded.Latest(site.Name)
		if !ok {
			continue
		}
		p, err := entry.Compile()
		if err != nil {
			t.Fatal(err)
		}
		rt := autowrap.NewExtractor(p, autowrap.ExtractOptions{Workers: 4})
		res, err := rt.Run(context.Background(), held[i])
		if err != nil {
			t.Fatal(err)
		}
		for _, pr := range res.Results {
			if pr.Err != nil {
				t.Fatalf("site %s: %v", site.Name, pr.Err)
			}
			extracted += len(pr.Texts)
		}
		if res.Stats.Records != sumRecords(res) {
			t.Fatalf("site %s: stats records %d != %d", site.Name, res.Stats.Records, sumRecords(res))
		}
	}
	if extracted == 0 {
		t.Fatal("restart + extract produced no records on held-out pages")
	}
}

func sumRecords(b *autowrap.ExtractBatch) int {
	n := 0
	for _, r := range b.Results {
		n += len(r.Texts)
	}
	return n
}
