module autowrap

go 1.24
