package autowrap_test

import (
	"context"
	"fmt"
	"testing"

	"autowrap"
	"autowrap/internal/dataset"
	"autowrap/internal/experiments"
	"autowrap/internal/segment"
	"autowrap/internal/stats"
)

// batchDealers builds a small DEALERS dataset plus engine specs over it.
func batchSpecs(t *testing.T, numSites int) []autowrap.BatchSite {
	t.Helper()
	ds, err := dataset.Dealers(dataset.DealersOptions{NumSites: numSites, NumPages: 6})
	if err != nil {
		t.Fatal(err)
	}
	models, err := dataset.LearnModels(ds.Train(), ds.TypeName, ds.Annotator,
		segment.Options{}, stats.KDEOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return experiments.BatchSpecs(ds, experiments.KindXPath, models.Scorer,
		experiments.BatchConfig{})
}

// TestLearnBatchMatchesSerialLearn is the facade-level acceptance check:
// the engine with many workers learns exactly the wrapper that serial
// per-site Learn calls produce, for every site of a DEALERS batch.
func TestLearnBatchMatchesSerialLearn(t *testing.T) {
	specs := batchSpecs(t, 10)
	serial, err := autowrap.LearnBatch(context.Background(), specs,
		autowrap.BatchOptions{Workers: 1, MinLabels: 2})
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := autowrap.LearnBatch(context.Background(), specs,
		autowrap.BatchOptions{Workers: 8, MinLabels: 2})
	if err != nil {
		t.Fatal(err)
	}
	if serial.Stats.Learned == 0 {
		t.Fatalf("nothing learned: %+v", serial.Stats)
	}
	for i := range specs {
		a, b := serial.Sites[i], parallel.Sites[i]
		if a.Skipped != b.Skipped || (a.Err == nil) != (b.Err == nil) {
			t.Fatalf("site %d outcome differs: serial=%+v parallel=%+v", i, a, b)
		}
		if a.Result == nil {
			continue
		}
		ra, rb := a.Result.Best.Wrapper, b.Result.Best.Wrapper
		if ra.Rule() != rb.Rule() {
			t.Fatalf("site %s: parallel best %q != serial best %q", a.Name, rb.Rule(), ra.Rule())
		}
		if !ra.Extract().Equal(rb.Extract()) {
			t.Fatalf("site %s: parallel extraction differs from serial", a.Name)
		}
	}
}

// TestLearnBatchFacadeSmoke exercises the documented facade path: build
// BatchSites by hand from parsed pages and learn them in one call.
func TestLearnBatchFacadeSmoke(t *testing.T) {
	var sites []autowrap.BatchSite
	for s := 0; s < 3; s++ {
		var pages []string
		for p := 0; p < 3; p++ {
			pages = append(pages, fmt.Sprintf(
				`<html><body><table>`+
					`<tr><td><u>STORE %02d%d1</u><br>1 Main St</td></tr>`+
					`<tr><td><u>STORE %02d%d2</u><br>2 Main St</td></tr>`+
					`</table></body></html>`, s, p, s, p))
		}
		c := autowrap.ParsePages(pages)
		sites = append(sites, autowrap.BatchSite{
			Name:   fmt.Sprintf("site-%d", s),
			Corpus: c,
			Annotator: autowrap.DictionaryAnnotator("d", []string{
				fmt.Sprintf("STORE %02d01", s), fmt.Sprintf("STORE %02d12", s)}),
			NewInductor: func(c *autowrap.Corpus) (autowrap.Inductor, error) {
				return autowrap.NewXPathInductor(c), nil
			},
			Config: autowrap.NewLearnConfig(autowrap.GenericModels(c), autowrap.Options{}),
		})
	}
	res, err := autowrap.LearnBatch(context.Background(), sites, autowrap.BatchOptions{Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Learned != 3 {
		t.Fatalf("stats = %+v, want 3 learned", res.Stats)
	}
	for _, r := range res.Sites {
		if got := r.Result.Best.Wrapper.Extract().Count(); got != 6 {
			t.Fatalf("site %s extracted %d nodes, want 6", r.Name, got)
		}
	}
}
