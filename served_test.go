// End-to-end acceptance test for the HTTP extraction service (ISSUE 4):
// learn a batch with the engine, store it, boot the server on a random
// port, extract over HTTP from held-out pages, serve a template-drifted
// twin until the monitor trips, repair it via POST /v1/repair, and verify
// the very same server instance serves the promoted wrapper — no restart,
// no cache invalidation, the hot-swap is the whole mechanism.
package autowrap_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"

	"autowrap"
	"autowrap/internal/serve"
)

// postJSON posts v and decodes the response into out, returning the status.
func postJSON(t *testing.T, url string, v, out any) int {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decoding %s response: %v", url, err)
		}
	}
	return resp.StatusCode
}

func TestHTTPServiceEndToEnd(t *testing.T) {
	clean, mutated, annot := maintPair(t)
	ctx := context.Background()

	// Learn with the engine on the training half of the clean site.
	var cleanHTML []string
	for _, p := range clean.Corpus.Pages {
		cleanHTML = append(cleanHTML, p.HTML)
	}
	split := len(cleanHTML) / 2
	train := autowrap.ParsePages(cleanHTML[:split])
	newInductor := func(c *autowrap.Corpus) (autowrap.Inductor, error) {
		return autowrap.NewXPathInductor(c), nil
	}
	config := autowrap.NewLearnConfig(autowrap.GenericModels(train), autowrap.Options{})
	batch, err := autowrap.LearnBatch(ctx, []autowrap.BatchSite{{
		Name:        clean.Name,
		Corpus:      train,
		Annotator:   annot,
		NewInductor: newInductor,
		Config:      config,
	}}, autowrap.BatchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	st := autowrap.NewWrapperStore()
	if n, err := autowrap.StoreBatch(st, batch); n != 1 || err != nil {
		t.Fatalf("StoreBatch: n=%d err=%v", n, err)
	}

	// Boot the whole serving stack on a random port, through the facade.
	monitor := autowrap.NewMonitor(autowrap.HealthPolicy{Window: 8, MinPages: 4})
	dispatcher := autowrap.NewDispatcher(st, autowrap.DispatcherOptions{Monitor: monitor})
	repairer := &autowrap.Repairer{
		Store: st,
		Spec: func(site string, c *autowrap.Corpus) (autowrap.BatchSite, error) {
			return autowrap.BatchSite{Annotator: annot, NewInductor: newInductor,
				Config: autowrap.NewLearnConfig(autowrap.GenericModels(c), autowrap.Options{})}, nil
		},
		Monitor: monitor,
	}
	srv, err := autowrap.NewServer(autowrap.ServerConfig{
		Dispatcher: dispatcher,
		Repairer:   repairer,
	})
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()

	// Held-out pages of the clean site extract over HTTP exactly what the
	// stored wrapper extracts natively.
	v1, _ := st.Active(clean.Name)
	native, err := v1.Compile()
	if err != nil {
		t.Fatal(err)
	}
	req := serve.ExtractRequest{Site: clean.Name}
	var want []string
	for i := split; i < len(cleanHTML); i++ {
		req.Pages = append(req.Pages, serve.PageInput{
			ID: fmt.Sprintf("held-%02d", i), HTML: cleanHTML[i]})
		for _, n := range native.ApplyPage(autowrap.ParsePage(cleanHTML[i])) {
			want = append(want, strings.TrimSpace(n.Data))
		}
	}
	if len(want) == 0 {
		t.Fatal("degenerate test: v1 extracts nothing from held-out pages")
	}
	var out serve.ExtractResponse
	if code := postJSON(t, hs.URL+"/v1/extract", req, &out); code != http.StatusOK {
		t.Fatalf("held-out extract: status %d", code)
	}
	if out.Version != 1 {
		t.Fatalf("held-out extract served v%d, want v1", out.Version)
	}
	var got []string
	for _, r := range out.Results {
		if r.Error != "" {
			t.Fatalf("held-out page %s failed: %s", r.ID, r.Error)
		}
		got = append(got, r.Records...)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("HTTP extraction %d records != native %d", len(got), len(want))
	}

	// Serve the template-drifted twin through the same endpoint: the
	// records collapse and the drift monitor trips.
	var driftReq serve.ExtractRequest
	var driftHTML []string
	driftReq.Site = clean.Name
	for i, p := range mutated.Corpus.Pages {
		driftReq.Pages = append(driftReq.Pages, serve.PageInput{
			ID: fmt.Sprintf("drift-%02d", i), HTML: p.HTML})
		driftHTML = append(driftHTML, p.HTML)
	}
	if code := postJSON(t, hs.URL+"/v1/extract", driftReq, nil); code != http.StatusOK {
		t.Fatalf("drifted extract: status %d", code)
	}
	health, ok := monitor.Site(clean.Name)
	if !ok || !health.Tripped() {
		t.Fatalf("drifted traffic did not trip the monitor: %v", monitor.Snapshot())
	}

	// /metrics reports the trip.
	mresp, err := http.Get(hs.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var metrics serve.MetricsResponse
	if err := json.NewDecoder(mresp.Body).Decode(&metrics); err != nil {
		t.Fatal(err)
	}
	mresp.Body.Close()
	if len(metrics.Sites) != 1 || metrics.Sites[0].Drift == nil || !metrics.Sites[0].Drift.Tripped {
		t.Fatalf("/metrics does not report the trip: %+v", metrics.Sites)
	}

	// Repair over HTTP: re-learn from the drifted pages, validated
	// promotion, hot-swap — all in one request.
	var rout serve.RepairResponse
	if code := postJSON(t, hs.URL+"/v1/repair",
		serve.RepairRequest{Site: clean.Name, Pages: driftHTML}, &rout); code != http.StatusOK {
		t.Fatalf("repair: status %d (%+v)", code, rout)
	}
	if !rout.Promoted || rout.ServingVersion != 2 {
		t.Fatalf("repair = %+v, want promoted v2", rout)
	}

	// The same server instance now serves the promoted wrapper: the
	// drifted pages extract the full gold record set, no restart involved.
	if code := postJSON(t, hs.URL+"/v1/extract", driftReq, &out); code != http.StatusOK {
		t.Fatalf("post-repair extract: status %d", code)
	}
	if out.Version != 2 {
		t.Fatalf("post-repair extract served v%d, want v2", out.Version)
	}
	got = nil
	for _, r := range out.Results {
		got = append(got, r.Records...)
	}
	want = nil
	mutated.Gold["name"].ForEach(func(ord int) {
		want = append(want, strings.TrimSpace(mutated.Corpus.TextContent(ord)))
	})
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("post-repair extraction: %d records, want %d gold", len(got), len(want))
	}

	// Rollback over HTTP flips serving straight back to v1.
	var admin serve.AdminResponse
	if code := postJSON(t, hs.URL+"/v1/rollback",
		serve.AdminRequest{Site: clean.Name}, &admin); code != http.StatusOK {
		t.Fatalf("rollback: status %d", code)
	}
	if admin.ServingVersion != 1 {
		t.Fatalf("rollback serving version = %d, want 1", admin.ServingVersion)
	}
	if code := postJSON(t, hs.URL+"/v1/extract", req, &out); code != http.StatusOK || out.Version != 1 {
		t.Fatalf("after rollback: status %d version %d, want 200/v1", code, out.Version)
	}
}
