// End-to-end acceptance test for the HTTP extraction service (ISSUE 4):
// learn a batch with the engine, store it, boot the server on a random
// port, extract over HTTP from held-out pages, serve a template-drifted
// twin until the monitor trips, repair it via POST /v1/repair, and verify
// the very same server instance serves the promoted wrapper — no restart,
// no cache invalidation, the hot-swap is the whole mechanism.
package autowrap_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"autowrap"
	"autowrap/internal/dataset"
	"autowrap/internal/gen"
	"autowrap/internal/serve"
)

// waitJob polls GET /v1/jobs/{id} until the job reaches a terminal state
// and fails the test unless that state is done.
func waitJob(t *testing.T, base, id string) serve.JobSnapshot {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for {
		resp, err := http.Get(base + "/v1/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var snap serve.JobSnapshot
		err = json.NewDecoder(resp.Body).Decode(&snap)
		resp.Body.Close()
		if err != nil {
			t.Fatalf("decoding job %s: %v", id, err)
		}
		if snap.State.Terminal() {
			if snap.State != "done" {
				t.Fatalf("job %s finished %s: %s", id, snap.State, snap.Error)
			}
			return snap
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in state %s", id, snap.State)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// repairResult re-decodes a done job's result payload as a RepairResponse
// (it travels as generic JSON inside the snapshot).
func repairResult(t *testing.T, snap serve.JobSnapshot) serve.RepairResponse {
	t.Helper()
	b, err := json.Marshal(snap.Result)
	if err != nil {
		t.Fatal(err)
	}
	var out serve.RepairResponse
	if err := json.Unmarshal(b, &out); err != nil {
		t.Fatalf("job %s result %v: %v", snap.ID, snap.Result, err)
	}
	return out
}

// postJSON posts v and decodes the response into out, returning the status.
func postJSON(t *testing.T, url string, v, out any) int {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decoding %s response: %v", url, err)
		}
	}
	return resp.StatusCode
}

func TestHTTPServiceEndToEnd(t *testing.T) {
	clean, mutated, annot := maintPair(t)
	ctx := context.Background()

	// Learn with the engine on the training half of the clean site.
	var cleanHTML []string
	for _, p := range clean.Corpus.Pages {
		cleanHTML = append(cleanHTML, p.HTML)
	}
	split := len(cleanHTML) / 2
	train := autowrap.ParsePages(cleanHTML[:split])
	newInductor := func(c *autowrap.Corpus) (autowrap.Inductor, error) {
		return autowrap.NewXPathInductor(c), nil
	}
	config := autowrap.NewLearnConfig(autowrap.GenericModels(train), autowrap.Options{})
	batch, err := autowrap.LearnBatch(ctx, []autowrap.BatchSite{{
		Name:        clean.Name,
		Corpus:      train,
		Annotator:   annot,
		NewInductor: newInductor,
		Config:      config,
	}}, autowrap.BatchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	st := autowrap.NewWrapperStore()
	if n, err := autowrap.StoreBatch(st, batch); n != 1 || err != nil {
		t.Fatalf("StoreBatch: n=%d err=%v", n, err)
	}

	// Boot the whole serving stack on a random port, through the facade.
	monitor := autowrap.NewMonitor(autowrap.HealthPolicy{Window: 8, MinPages: 4})
	dispatcher := autowrap.NewDispatcher(st, autowrap.DispatcherOptions{Monitor: monitor})
	repairer := &autowrap.Repairer{
		Store: st,
		Spec: func(site string, c *autowrap.Corpus) (autowrap.BatchSite, error) {
			return autowrap.BatchSite{Annotator: annot, NewInductor: newInductor,
				Config: autowrap.NewLearnConfig(autowrap.GenericModels(c), autowrap.Options{})}, nil
		},
		Monitor: monitor,
	}
	srv, err := autowrap.NewServer(autowrap.ServerConfig{
		Dispatcher: dispatcher,
		Repairer:   repairer,
	})
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()
	defer srv.Close() // drains the implicitly created job manager

	// Held-out pages of the clean site extract over HTTP exactly what the
	// stored wrapper extracts natively.
	v1, _ := st.Active(clean.Name)
	native, err := v1.Compile()
	if err != nil {
		t.Fatal(err)
	}
	req := serve.ExtractRequest{Site: clean.Name}
	var want []string
	for i := split; i < len(cleanHTML); i++ {
		req.Pages = append(req.Pages, serve.PageInput{
			ID: fmt.Sprintf("held-%02d", i), HTML: cleanHTML[i]})
		for _, n := range native.ApplyPage(autowrap.ParsePage(cleanHTML[i])) {
			want = append(want, strings.TrimSpace(n.Data))
		}
	}
	if len(want) == 0 {
		t.Fatal("degenerate test: v1 extracts nothing from held-out pages")
	}
	var out serve.ExtractResponse
	if code := postJSON(t, hs.URL+"/v1/extract", req, &out); code != http.StatusOK {
		t.Fatalf("held-out extract: status %d", code)
	}
	if out.Version != 1 {
		t.Fatalf("held-out extract served v%d, want v1", out.Version)
	}
	var got []string
	for _, r := range out.Results {
		if r.Error != "" {
			t.Fatalf("held-out page %s failed: %s", r.ID, r.Error)
		}
		got = append(got, r.Records...)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("HTTP extraction %d records != native %d", len(got), len(want))
	}

	// Serve the template-drifted twin through the same endpoint: the
	// records collapse and the drift monitor trips.
	var driftReq serve.ExtractRequest
	var driftHTML []string
	driftReq.Site = clean.Name
	for i, p := range mutated.Corpus.Pages {
		driftReq.Pages = append(driftReq.Pages, serve.PageInput{
			ID: fmt.Sprintf("drift-%02d", i), HTML: p.HTML})
		driftHTML = append(driftHTML, p.HTML)
	}
	if code := postJSON(t, hs.URL+"/v1/extract", driftReq, nil); code != http.StatusOK {
		t.Fatalf("drifted extract: status %d", code)
	}
	health, ok := monitor.Site(clean.Name)
	if !ok || !health.Tripped() {
		t.Fatalf("drifted traffic did not trip the monitor: %v", monitor.Snapshot())
	}

	// /metrics reports the trip.
	mresp, err := http.Get(hs.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var metrics serve.MetricsResponse
	if err := json.NewDecoder(mresp.Body).Decode(&metrics); err != nil {
		t.Fatal(err)
	}
	mresp.Body.Close()
	if len(metrics.Sites) != 1 || metrics.Sites[0].Drift == nil || !metrics.Sites[0].Drift.Tripped {
		t.Fatalf("/metrics does not report the trip: %+v", metrics.Sites)
	}

	// Repair over HTTP: the request enqueues a background job and answers
	// 202 + job id immediately — learning happens on the maintenance
	// plane, not inside the HTTP request. Poll the job to completion,
	// then check the validated promotion + hot-swap it performed.
	var accepted serve.JobAccepted
	if code := postJSON(t, hs.URL+"/v1/repair",
		serve.RepairRequest{Site: clean.Name, Pages: driftHTML}, &accepted); code != http.StatusAccepted {
		t.Fatalf("repair: status %d (%+v), want 202", code, accepted)
	}
	if accepted.JobID == "" || accepted.Kind != "repair" {
		t.Fatalf("repair acceptance = %+v", accepted)
	}
	job := waitJob(t, hs.URL, accepted.JobID)
	rout := repairResult(t, job)
	if !rout.Promoted || rout.ServingVersion != 2 {
		t.Fatalf("repair job result = %+v, want promoted v2", rout)
	}

	// The same server instance now serves the promoted wrapper: the
	// drifted pages extract the full gold record set, no restart involved.
	if code := postJSON(t, hs.URL+"/v1/extract", driftReq, &out); code != http.StatusOK {
		t.Fatalf("post-repair extract: status %d", code)
	}
	if out.Version != 2 {
		t.Fatalf("post-repair extract served v%d, want v2", out.Version)
	}
	got = nil
	for _, r := range out.Results {
		got = append(got, r.Records...)
	}
	want = nil
	mutated.Gold["name"].ForEach(func(ord int) {
		want = append(want, strings.TrimSpace(mutated.Corpus.TextContent(ord)))
	})
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("post-repair extraction: %d records, want %d gold", len(got), len(want))
	}

	// Rollback over HTTP flips serving straight back to v1.
	var admin serve.AdminResponse
	if code := postJSON(t, hs.URL+"/v1/rollback",
		serve.AdminRequest{Site: clean.Name}, &admin); code != http.StatusOK {
		t.Fatalf("rollback: status %d", code)
	}
	if admin.ServingVersion != 1 {
		t.Fatalf("rollback serving version = %d, want 1", admin.ServingVersion)
	}
	if code := postJSON(t, hs.URL+"/v1/extract", req, &out); code != http.StatusOK || out.Version != 1 {
		t.Fatalf("after rollback: status %d version %d, want 200/v1", code, out.Version)
	}
}

// maintPairSeed is maintPair with a caller-chosen seed, for tests that
// need a second, unrelated site.
func maintPairSeed(t *testing.T, seed int64) (clean, mutated *gen.Site, annot autowrap.Annotator) {
	t.Helper()
	opts := dataset.DealersOptions{NumSites: 1, NumPages: 16, Seed: seed}
	ds, err := dataset.Dealers(opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.Drift = 2
	dsm, err := dataset.Dealers(opts)
	if err != nil {
		t.Fatal(err)
	}
	return ds.Sites[0], dsm.Sites[0], ds.Annotator
}

// learnedServerFromSites boots the full serving stack (engine-learned v1
// of the clean site, monitor, repairer, job manager) and returns the
// pieces the maintenance tests drive.
func learnedServerFromSites(t *testing.T, clean *gen.Site, annot autowrap.Annotator,
	gate *autowrap.AdmissionGate, recentPages int) (*autowrap.Server, *httptest.Server, *autowrap.Monitor) {
	t.Helper()
	ctx := context.Background()
	newInductor := func(c *autowrap.Corpus) (autowrap.Inductor, error) {
		return autowrap.NewXPathInductor(c), nil
	}
	batch, err := autowrap.LearnBatch(ctx, []autowrap.BatchSite{{
		Name:        clean.Name,
		Corpus:      clean.Corpus,
		Annotator:   annot,
		NewInductor: newInductor,
		Config:      autowrap.NewLearnConfig(autowrap.GenericModels(clean.Corpus), autowrap.Options{}),
	}}, autowrap.BatchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	st := autowrap.NewWrapperStore()
	if n, err := autowrap.StoreBatch(st, batch); n != 1 || err != nil {
		t.Fatalf("StoreBatch: n=%d err=%v", n, err)
	}
	monitor := autowrap.NewMonitor(autowrap.HealthPolicy{Window: 8, MinPages: 4})
	dispatcher := autowrap.NewDispatcher(st, autowrap.DispatcherOptions{
		Monitor: monitor, RecentPages: recentPages,
	})
	repairer := &autowrap.Repairer{
		Store: st,
		Spec: func(site string, c *autowrap.Corpus) (autowrap.BatchSite, error) {
			return autowrap.BatchSite{Annotator: annot, NewInductor: newInductor,
				Config: autowrap.NewLearnConfig(autowrap.GenericModels(c), autowrap.Options{})}, nil
		},
		Monitor: monitor,
	}
	srv, err := autowrap.NewServer(autowrap.ServerConfig{
		Dispatcher: dispatcher,
		Gate:       gate,
		Repairer:   repairer,
	})
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(hs.Close)
	t.Cleanup(func() { srv.Close() })
	return srv, hs, monitor
}

// TestAutoRepairHealsWithoutAdminCall is the acceptance e2e for the
// autonomous maintenance loop: a drift-tripped site heals via the scanner
// — trip → auto-enqueued repair job re-learning from recently served
// pages → validated promotion → hot-swap — with no /v1/repair call and no
// admin intervention of any kind.
func TestAutoRepairHealsWithoutAdminCall(t *testing.T) {
	clean, mutated, annot := maintPair(t)
	srv, hs, monitor := learnedServerFromSites(t, clean, annot, nil, 32)

	maintainer, err := autowrap.NewMaintainer(srv, autowrap.MaintainerOptions{
		Interval: 25 * time.Millisecond,
		MinGap:   50 * time.Millisecond,
		MinPages: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	maintainer.Start()
	defer maintainer.Stop()

	// Drifted traffic only — the site's records collapse, the monitor
	// trips, and from here on nobody calls any admin endpoint.
	driftReq := serve.ExtractRequest{Site: clean.Name}
	for i, p := range mutated.Corpus.Pages {
		driftReq.Pages = append(driftReq.Pages, serve.PageInput{
			ID: fmt.Sprintf("drift-%02d", i), HTML: p.HTML})
	}
	if code := postJSON(t, hs.URL+"/v1/extract", driftReq, nil); code != http.StatusOK {
		t.Fatalf("drifted extract: status %d", code)
	}
	// The trip hook may already have repaired and re-armed the monitor by
	// now (that is the point); the lifetime trip counter proves the trip
	// happened.
	if h, ok := monitor.Site(clean.Name); !ok || h.Stats().Trips < 1 {
		t.Fatalf("drifted traffic did not trip the monitor: %v", monitor.Snapshot())
	}

	// The site must heal on its own: keep serving drifted pages until the
	// promoted v2 answers (the trip hook + scanner own the repair).
	var out serve.ExtractResponse
	deadline := time.Now().Add(60 * time.Second)
	probe := serve.ExtractRequest{Site: clean.Name,
		Page: &serve.PageInput{ID: "probe", HTML: mutated.Corpus.Pages[0].HTML}}
	for {
		if code := postJSON(t, hs.URL+"/v1/extract", probe, &out); code != http.StatusOK {
			t.Fatalf("probe extract: status %d", code)
		}
		if out.Version >= 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("site never auto-healed; still serving v%d (jobs: %+v)",
				out.Version, srv.Jobs().List())
		}
		time.Sleep(20 * time.Millisecond)
	}

	// The healed wrapper extracts the drifted site's full gold record set.
	if code := postJSON(t, hs.URL+"/v1/extract", driftReq, &out); code != http.StatusOK {
		t.Fatalf("post-heal extract: status %d", code)
	}
	var got []string
	for _, r := range out.Results {
		got = append(got, r.Records...)
	}
	var want []string
	mutated.Gold["name"].ForEach(func(ord int) {
		want = append(want, strings.TrimSpace(mutated.Corpus.TextContent(ord)))
	})
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("post-heal extraction: %d records, want %d gold", len(got), len(want))
	}

	// The repair rode the job plane: a done auto-repair job is visible.
	var sawRepair bool
	for _, j := range srv.Jobs().List() {
		if j.Kind == "repair" && j.Site == clean.Name && j.State == "done" {
			sawRepair = true
		}
	}
	if !sawRepair {
		t.Fatalf("no done repair job in %+v", srv.Jobs().List())
	}
	// The monitor re-armed against the new wrapper.
	if h, ok := monitor.Site(clean.Name); !ok || h.Tripped() {
		t.Fatal("monitor still tripped after auto-repair")
	}
}

// TestRepairAnswers202WhileExtractGateSaturated pins the isolation
// acceptance criterion: POST /v1/repair returns 202 + job id immediately
// even while the extract hot path is fully saturated — the maintenance
// plane never queues behind (or inside) the admission gate, where the old
// blocking repair serialized.
func TestRepairAnswers202WhileExtractGateSaturated(t *testing.T) {
	clean, mutated, annot := maintPair(t)
	gate := autowrap.NewAdmissionGate(autowrap.AdmissionOptions{MaxInFlight: 1, MaxQueue: -1})
	_, hs, _ := learnedServerFromSites(t, clean, annot, gate, 0)

	// Saturate the gate: extract requests are now rejected at the door.
	release, err := gate.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer release()
	if code := postJSON(t, hs.URL+"/v1/extract", serve.ExtractRequest{
		Site: clean.Name,
		Page: &serve.PageInput{HTML: clean.Corpus.Pages[0].HTML}}, nil); code != http.StatusTooManyRequests {
		t.Fatalf("extract through saturated gate: status %d, want 429", code)
	}

	var driftHTML []string
	for _, p := range mutated.Corpus.Pages {
		driftHTML = append(driftHTML, p.HTML)
	}
	var accepted serve.JobAccepted
	start := time.Now()
	code := postJSON(t, hs.URL+"/v1/repair",
		serve.RepairRequest{Site: clean.Name, Pages: driftHTML}, &accepted)
	elapsed := time.Since(start)
	if code != http.StatusAccepted || accepted.JobID == "" {
		t.Fatalf("repair under extract load: status %d (%+v), want 202 + job id", code, accepted)
	}
	// The acceptance budget is 50ms; CI boxes wobble, so the hard test
	// bound is looser — but nowhere near a learn's duration, proving the
	// response did not wait for the job.
	if elapsed > 2*time.Second {
		t.Fatalf("repair submission took %v with the gate saturated; must not serialize", elapsed)
	}
	t.Logf("repair answered 202 in %v with the extract gate saturated", elapsed)

	// The job itself completes fine on the background plane.
	job := waitJob(t, hs.URL, accepted.JobID)
	if res := repairResult(t, job); !res.Promoted {
		t.Fatalf("background repair result = %+v, want promoted", res)
	}
}

// TestHTTPLearnJobNewSite drives the over-the-wire learning path: a site
// the store has never seen is submitted via POST /v1/learn, learned on
// the job plane, promoted unconditionally (no incumbent), hot-swapped,
// and immediately serves extractions.
func TestHTTPLearnJobNewSite(t *testing.T) {
	clean, _, annot := maintPair(t)
	newSite, _, _ := maintPairSeed(t, 2002)
	_, hs, _ := learnedServerFromSites(t, clean, annot, nil, 0)

	var pages []string
	for _, p := range newSite.Corpus.Pages {
		pages = append(pages, p.HTML)
	}
	var accepted serve.JobAccepted
	if code := postJSON(t, hs.URL+"/v1/learn",
		serve.LearnRequest{Site: newSite.Name + "-via-http", Pages: pages}, &accepted); code != http.StatusAccepted {
		t.Fatalf("learn: status %d (%+v), want 202", code, accepted)
	}
	if accepted.Kind != "learn" {
		t.Fatalf("accepted kind = %q, want learn", accepted.Kind)
	}
	job := waitJob(t, hs.URL, accepted.JobID)
	res := repairResult(t, job)
	if !res.Promoted || res.ServingVersion != 1 {
		t.Fatalf("learn job result = %+v, want promoted v1 (no incumbent)", res)
	}

	// The freshly learned site serves over the same server instance.
	var out serve.ExtractResponse
	if code := postJSON(t, hs.URL+"/v1/extract", serve.ExtractRequest{
		Site: newSite.Name + "-via-http",
		Page: &serve.PageInput{HTML: newSite.Corpus.Pages[0].HTML}}, &out); code != http.StatusOK {
		t.Fatalf("extract from learned site: status %d", code)
	}
	if len(out.Results) != 1 || len(out.Results[0].Records) == 0 {
		t.Fatalf("learned site extracted nothing: %+v", out)
	}
}

// TestFacadeShardedFleet pins the facade's sharding surface end to end:
// learn a small batch, save it, reload each shard's slice with
// LoadWrapperStorePartition, front the per-shard servers with
// NewShardRouter, and extract every site through the one fleet handler —
// each request dispatched by the ring to the shard that owns the site.
func TestFacadeShardedFleet(t *testing.T) {
	ds, err := dataset.Dealers(dataset.DealersOptions{NumSites: 3, NumPages: 8})
	if err != nil {
		t.Fatal(err)
	}
	newInductor := func(c *autowrap.Corpus) (autowrap.Inductor, error) {
		return autowrap.NewXPathInductor(c), nil
	}
	var sites []autowrap.BatchSite
	for _, site := range ds.Sites {
		sites = append(sites, autowrap.BatchSite{
			Name: site.Name, Corpus: site.Corpus, Annotator: ds.Annotator,
			NewInductor: newInductor,
			Config:      autowrap.NewLearnConfig(autowrap.GenericModels(site.Corpus), autowrap.Options{}),
		})
	}
	batch, err := autowrap.LearnBatch(context.Background(), sites, autowrap.BatchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	st := autowrap.NewWrapperStore()
	if n, err := autowrap.StoreBatch(st, batch); n != len(sites) || err != nil {
		t.Fatalf("StoreBatch: n=%d err=%v", n, err)
	}
	path := filepath.Join(t.TempDir(), "wrappers.json")
	if err := st.Save(path); err != nil {
		t.Fatal(err)
	}

	// Two shards over the saved registry: each server loads only its own
	// partition from the shared file backend and persists through it.
	ring := autowrap.NewShardRing(2, 64)
	be, err := autowrap.OpenFileStore(path)
	if err != nil {
		t.Fatal(err)
	}
	router, err := autowrap.NewShardRouter(ring,
		func(k int) (*autowrap.Server, error) {
			part, err := be.LoadPartition(ring, k)
			if err != nil {
				return nil, err
			}
			return autowrap.NewServer(autowrap.ServerConfig{
				Dispatcher: autowrap.NewDispatcher(part, autowrap.DispatcherOptions{}),
				Backend:    be,
				Shard:      k,
			})
		})
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(router.Handler())
	defer hs.Close()

	var h serve.FleetHealthzResponse
	resp, err := http.Get(hs.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	err = json.NewDecoder(resp.Body).Decode(&h)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if h.Shards != 2 || h.Sites != len(ds.Sites) {
		t.Fatalf("fleet healthz = %+v, want 2 shards serving %d sites", h, len(ds.Sites))
	}

	for _, site := range ds.Sites {
		var out serve.ExtractResponse
		code := postJSON(t, hs.URL+"/v1/extract", serve.ExtractRequest{
			Site: site.Name,
			Page: &serve.PageInput{ID: "p0", HTML: site.Corpus.Pages[0].HTML},
		}, &out)
		if code != http.StatusOK {
			t.Fatalf("%s through the fleet: status %d", site.Name, code)
		}
		if len(out.Results) != 1 || out.Results[0].Error != "" || len(out.Results[0].Records) == 0 {
			t.Fatalf("%s through the fleet extracted nothing: %+v", site.Name, out)
		}
	}
}
