// End-to-end acceptance tests for the durability subsystem (ISSUE 9):
// the same lifecycle driven through the HTTP service over both store
// backends must land byte-identical registries on a cold reopen, and a
// single flipped byte anywhere in the audit ledger must be named by
// sequence number when the chain is verified.
package autowrap_test

import (
	"errors"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"

	"autowrap"
	"autowrap/internal/audit"
	"autowrap/internal/lr"
	"autowrap/internal/serve"
	"autowrap/internal/store"
)

// bootDurable seeds a two-version site into the given backend and boots
// a server persisting through it with a live audit ledger.
func bootDurable(t *testing.T, be autowrap.StoreBackend, seed func(*store.Store) error, auditPath string) *httptest.Server {
	t.Helper()
	st := store.New()
	put := func(site, class string, candidate bool) error {
		w := &lr.Compiled{Left: `<div class="` + class + `">`, Right: `</div>`}
		var err error
		if candidate {
			_, err = st.PutCandidate(site, w, store.Meta{})
		} else {
			_, err = st.Put(site, w, store.Meta{})
		}
		return err
	}
	if err := put("shop.example.com", "a", false); err != nil {
		t.Fatal(err)
	}
	if err := put("shop.example.com", "b", true); err != nil {
		t.Fatal(err)
	}
	if err := put("news.example.com", "a", false); err != nil {
		t.Fatal(err)
	}
	if err := seed(st); err != nil {
		t.Fatal(err)
	}
	led, err := autowrap.OpenAuditLedger(auditPath, autowrap.AuditLedgerOptions{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { led.Close() })
	srv, err := autowrap.NewServer(autowrap.ServerConfig{
		Dispatcher: autowrap.NewDispatcher(st, autowrap.DispatcherOptions{}),
		Backend:    be,
		Shard:      0,
		Audit:      led,
	})
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(hs.Close)
	return hs
}

// driveLifecycle runs the same admin script every parity variant must
// agree on: promote shop to v2, roll it back.
func driveLifecycle(t *testing.T, base string) {
	t.Helper()
	var admin serve.AdminResponse
	if code := postJSON(t, base+"/v1/promote",
		serve.AdminRequest{Site: "shop.example.com", Version: 2}, &admin); code != http.StatusOK {
		t.Fatalf("promote: status %d", code)
	}
	if code := postJSON(t, base+"/v1/rollback",
		serve.AdminRequest{Site: "shop.example.com"}, &admin); code != http.StatusOK {
		t.Fatalf("rollback: status %d", code)
	}
}

// TestStoreBackendParityEndToEnd pins the pluggability contract: the
// identical HTTP lifecycle through the file backend and the log backend
// must produce byte-identical registries on a cold reload.
func TestStoreBackendParityEndToEnd(t *testing.T) {
	dir := t.TempDir()

	// File backend: attach the live partition, snapshot the seed, serve.
	filePath := filepath.Join(dir, "wrappers.json")
	fb, err := autowrap.OpenFileStore(filePath)
	if err != nil {
		t.Fatal(err)
	}
	hs := bootDurable(t, fb, func(st *store.Store) error {
		fb.Attach(0, st)
		return fb.Snapshot()
	}, filepath.Join(dir, "audit-file.jsonl"))
	driveLifecycle(t, hs.URL)

	// Log backend: seed the empty log from the same registry, serve.
	logDir := filepath.Join(dir, "wrappers.log")
	lb, err := autowrap.OpenLogStore(logDir, autowrap.LogStoreOptions{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	hs2 := bootDurable(t, lb, lb.SeedFrom, filepath.Join(dir, "audit-log.jsonl"))
	driveLifecycle(t, hs2.URL)
	if err := lb.Close(); err != nil {
		t.Fatal(err)
	}

	// Cold reload both. The file backend wrote Store.Save bytes; the log
	// backend replays its records. Same lifecycle, same registry.
	viaFile, err := autowrap.LoadWrapperStore(filePath)
	if err != nil {
		t.Fatal(err)
	}
	lb2, err := autowrap.OpenLogStore(logDir, autowrap.LogStoreOptions{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer lb2.Close()
	viaLog, err := lb2.Load()
	if err != nil {
		t.Fatal(err)
	}
	encFile, err := viaFile.Encode()
	if err != nil {
		t.Fatal(err)
	}
	encLog, err := viaLog.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if string(encFile) != string(encLog) {
		t.Fatalf("backends diverge after identical lifecycle:\n--- file ---\n%s\n--- log ---\n%s", encFile, encLog)
	}
	if act, ok := viaLog.Active("shop.example.com"); !ok || act.Version != 1 {
		t.Fatalf("lifecycle did not land: active %+v ok=%v, want v1 after rollback", act, ok)
	}
	if len(viaLog.History("shop.example.com")) != 2 {
		t.Fatalf("history lost a version: %d", len(viaLog.History("shop.example.com")))
	}
}

// TestAuditTamperNamedBySeq is the headline acceptance pin: flip ONE byte
// of a ledger written by real server traffic and VerifyAuditLedger must
// fail with a TamperError naming the offending sequence number.
func TestAuditTamperNamedBySeq(t *testing.T) {
	dir := t.TempDir()
	lb, err := autowrap.OpenLogStore(filepath.Join(dir, "wrappers.log"), autowrap.LogStoreOptions{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer lb.Close()
	auditPath := filepath.Join(dir, "audit.jsonl")
	hs := bootDurable(t, lb, lb.SeedFrom, auditPath)
	driveLifecycle(t, hs.URL)

	if _, err := autowrap.VerifyAuditLedger(auditPath); err != nil {
		t.Fatalf("untampered ledger must verify: %v", err)
	}
	data, err := os.ReadFile(auditPath)
	if err != nil {
		t.Fatal(err)
	}
	// Flip one bit in the middle of the first record — the promote event.
	data[20] ^= 0x01
	if err := os.WriteFile(auditPath, data, 0o644); err != nil {
		t.Fatal(err)
	}
	_, verr := autowrap.VerifyAuditLedger(auditPath)
	var te *audit.TamperError
	if !errors.As(verr, &te) {
		t.Fatalf("tampered ledger verified clean: %v", verr)
	}
	if te.Seq != 1 {
		t.Fatalf("tamper in record 1 blamed on seq %d", te.Seq)
	}
}
